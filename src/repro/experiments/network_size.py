"""Table 2: CUP versus standard caching across network sizes (§3.5).

For n = 2^k nodes (k = 3..12 in the paper) at λ = 1 query/second, four
metrics per size:

* CUP miss cost as a fraction of standard caching's;
* CUP average miss latency (hops per miss);
* standard caching average miss latency;
* saved miss hops per CUP overhead hop (the "investment return").

Also reproduces the §3.5 high-rate comparison point (n = 1024,
λ = 1000): miss-cost ratio ≈ 0.09, CUP latency ≈ 10x below standard
caching, return ≈ 168:1 in the paper.

Shape claims: standard-caching miss latency grows with n much faster
than CUP's, and the high-rate point is dramatically more favorable to
CUP than the low-rate points.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.experiments.base import ExperimentResult, monotone_nondecreasing
from repro.experiments.config import Scale, resolve_scale
from repro.experiments.executor import Cell, execute
from repro.metrics.report import Table, format_float


class NetworkSizeResult(ExperimentResult):
    """Per-size metric rows (paper Table 2 transposed per column)."""

    def __init__(self) -> None:
        super().__init__()
        self.sizes: List[int] = []
        #: metric -> [value per size]
        self.metrics: Dict[str, List[float]] = {
            "miss_ratio": [],
            "cup_latency": [],
            "std_latency": [],
            "saved_per_overhead": [],
        }
        self.high_rate_point: Optional[Dict[str, float]] = None

    def add_size(self, n: int, miss_ratio: float, cup_latency: float,
                 std_latency: float, saved_per_overhead: float) -> None:
        self.sizes.append(n)
        self.metrics["miss_ratio"].append(miss_ratio)
        self.metrics["cup_latency"].append(cup_latency)
        self.metrics["std_latency"].append(std_latency)
        self.metrics["saved_per_overhead"].append(saved_per_overhead)

    def format_table(self) -> str:
        table = Table(
            self.title,
            ["Metric"] + [str(n) for n in self.sizes],
        )
        labels = {
            "miss_ratio": "CUP / STD miss cost",
            "cup_latency": "CUP miss latency",
            "std_latency": "STD miss latency",
            "saved_per_overhead": "Saved miss hops per overhead hop",
        }
        for key, label in labels.items():
            table.add_row(
                label, *(format_float(v, 2) for v in self.metrics[key])
            )
        out = table.render()
        if self.high_rate_point:
            p = self.high_rate_point
            out += (
                f"\nHigh-rate point (§3.5, n={int(p['n'])}, "
                f"paper-λ={p['rate']:g}): miss ratio {p['miss_ratio']:.2f}, "
                f"CUP latency {p['cup_latency']:.1f} vs STD "
                f"{p['std_latency']:.1f} hops, "
                f"return {p['saved_per_overhead']:.1f}:1"
            )
        return out


def run_network_size(
    scale: Optional[Scale] = None,
    exponents: Optional[Sequence[int]] = None,
    paper_rate: float = 1.0,
    high_rate: Optional[float] = 100.0,
    seed: int = 42,
    workers: Optional[int] = None,
) -> NetworkSizeResult:
    """Reproduce Table 2 plus the §3.5 high-rate comparison point.

    ``exponents`` are the k of n = 2^k; the preset's node count bounds
    the default sweep (paper: 3..12).  The query rate is held at the
    paper's λ (rate is *not* scaled with n here — Table 2 fixes λ = 1
    while growing the network, which is what makes large networks
    favorable to CUP).
    """
    scale = scale or resolve_scale()
    max_k = scale.num_nodes.bit_length() + 1
    exponents = list(exponents) if exponents is not None else list(range(3, max_k + 1))
    result = NetworkSizeResult()
    result.title = (
        f"Table 2: CUP vs standard caching by network size "
        f"(paper-λ={paper_rate:g}, scale={scale.name})"
    )

    with_high_rate = high_rate is not None and high_rate <= scale.max_rate
    cells = []
    for k in exponents:
        n = 2 ** k
        config = scale.config(
            seed=seed, num_nodes=n, query_rate=scale.rate(paper_rate)
        )
        cells.append(Cell(("cup", k), config))
        cells.append(Cell(("std", k), config.variant(mode="standard")))
    if with_high_rate:
        config = scale.config(
            seed=seed,
            num_nodes=2 ** exponents[-1],
            query_rate=scale.rate(high_rate),
        )
        cells.append(Cell(("cup", "high"), config))
        cells.append(Cell(("std", "high"), config.variant(mode="standard")))
    summaries = execute(cells, workers=workers)

    for k in exponents:
        n = 2 ** k
        cup, std = summaries[("cup", k)], summaries[("std", k)]
        result.add_size(
            n,
            miss_ratio=cup.miss_cost / max(std.miss_cost, 1),
            cup_latency=cup.miss_latency,
            std_latency=std.miss_latency,
            saved_per_overhead=cup.saved_miss_ratio(std),
        )

    if with_high_rate:
        n = 2 ** exponents[-1]
        cup, std = summaries[("cup", "high")], summaries[("std", "high")]
        result.high_rate_point = {
            "n": float(n),
            "rate": high_rate,
            "miss_ratio": cup.miss_cost / max(std.miss_cost, 1),
            "cup_latency": cup.miss_latency,
            "std_latency": std.miss_latency,
            "saved_per_overhead": cup.saved_miss_ratio(std),
        }

    result.expect(
        "CUP miss cost below standard caching at every size",
        all(r < 1.0 for r in result.metrics["miss_ratio"]),
    )
    result.expect(
        "standard-caching miss latency grows with network size",
        monotone_nondecreasing(result.metrics["std_latency"], slack=0.15),
    )
    result.expect(
        "CUP miss latency at or below standard caching's at every size "
        "(10% noise tolerance at the smallest networks)",
        all(
            c <= s * 1.10 + 0.2
            for c, s in zip(
                result.metrics["cup_latency"], result.metrics["std_latency"]
            )
        ),
    )
    result.expect(
        "CUP miss latency strictly below standard caching's at the "
        "largest size",
        result.metrics["cup_latency"][-1] < result.metrics["std_latency"][-1],
    )
    result.expect(
        "CUP's latency advantage widens with network size "
        "(last size's gap exceeds the first's)",
        (
            result.metrics["std_latency"][-1]
            - result.metrics["cup_latency"][-1]
        )
        > (
            result.metrics["std_latency"][0]
            - result.metrics["cup_latency"][0]
        ),
    )
    if result.high_rate_point:
        result.expect(
            "high query rate is dramatically more favorable: miss ratio "
            "at high rate below the low-rate ratio at the same size",
            result.high_rate_point["miss_ratio"]
            < result.metrics["miss_ratio"][-1] + 0.05,
        )
        result.expect(
            "high-rate investment return exceeds the low-rate return",
            result.high_rate_point["saved_per_overhead"]
            > result.metrics["saved_per_overhead"][-1],
        )
    return result
