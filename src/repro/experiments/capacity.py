"""Figures 5 and 6: total cost versus reduced outgoing capacity (§3.7).

After a warm-up, twenty percent of nodes have their outgoing update
capacity reduced to a fraction ``c`` — either repeatedly for ten-minute
episodes with recovery in between (*Up-And-Down*) or permanently
(*Once-Down-Always-Down*).  A node at capacity ``c`` pushes only that
fraction of the maintenance updates it would have forwarded; its subtree
degrades toward standard caching.

Shape claims checked:

* miss cost rises as capacity drops (degradation) in both configurations;
* the degradation is graceful — no cliff at c = 0, because suppressed
  propagation also saves its own overhead;
* Once-Down-Always-Down suffers at least as many misses as Up-And-Down
  (recovery periods heal the subscription trees).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.core.protocol import CupConfig
from repro.experiments.base import ExperimentResult
from repro.experiments.config import Scale, resolve_scale
from repro.experiments.executor import (
    FAULT_CONFIGURATIONS,
    Cell,
    FaultSpec,
    execute,
)
from repro.metrics.collector import MetricsSummary
from repro.metrics.report import Table

CONFIGURATIONS = FAULT_CONFIGURATIONS


def run_with_faults(
    config: CupConfig,
    configuration: str,
    reduced: float,
    fraction: float = 0.2,
    warmup: float = 300.0,
    down_for: float = 600.0,
    stable_for: float = 300.0,
) -> MetricsSummary:
    """One CUP run with a §3.7 capacity fault schedule attached.

    Thin wrapper over the executor's declarative fault cells; results
    share the run caches with the sweep harnesses.
    """
    spec = FaultSpec(
        configuration=configuration,
        reduced=reduced,
        fraction=fraction,
        warmup=warmup,
        down_for=down_for,
        stable_for=stable_for,
    )
    return execute([Cell("faulted", config, spec)])["faulted"]


class CapacityResult(ExperimentResult):
    """Total/miss cost per (configuration, reduced capacity)."""

    def __init__(self, capacities: List[float]):
        super().__init__()
        self.capacities = capacities
        #: configuration -> {"total": [...], "miss": [...]}
        self.series: Dict[str, Dict[str, List[int]]] = {}
        self.std_total = 0
        self.full_capacity_total = 0

    def format_table(self) -> str:
        headers = ["capacity c"]
        for name in self.series:
            headers += [f"{name} total", f"{name} miss"]
        table = Table(self.title, headers)
        for i, c in enumerate(self.capacities):
            cells: List[object] = [f"{c:.2f}"]
            for name in self.series:
                cells.append(self.series[name]["total"][i])
                cells.append(self.series[name]["miss"][i])
            table.add_row(*cells)
        return (
            table.render()
            + f"\nStandard caching total cost: {self.std_total}"
            + f"\nCUP at full capacity:        {self.full_capacity_total}"
        )


def run_capacity(
    scale: Optional[Scale] = None,
    paper_rate: float = 1.0,
    capacities: Sequence[float] = (0.0, 0.25, 0.5, 0.75, 1.0),
    fraction: float = 0.2,
    seed: int = 42,
    log_scale_figure: bool = False,
    workers: Optional[int] = None,
) -> CapacityResult:
    """Reproduce Figure 5 (λ=1) or Figure 6 (λ=1000, log y-axis)."""
    scale = scale or resolve_scale()
    base = scale.config(seed=seed, query_rate=scale.rate(paper_rate))
    # Fault episode lengths scale with the preset's time axis.
    time_factor = scale.query_duration / 3000.0
    capacities = sorted(capacities)
    result = CapacityResult(list(capacities))
    figure = "Figure 6" if log_scale_figure else "Figure 5"
    result.title = (
        f"{figure}: total cost vs reduced capacity "
        f"(n={base.num_nodes}, paper-λ={paper_rate:g}, "
        f"{fraction:.0%} of nodes, scale={scale.name})"
    )

    cells = [
        Cell("std", base.variant(mode="standard")),
        Cell("full", base),
    ]
    for name in CONFIGURATIONS:
        cells.extend(
            Cell(
                (name, c),
                base,
                FaultSpec(
                    configuration=name,
                    reduced=c,
                    fraction=fraction,
                    warmup=300.0 * time_factor,
                    down_for=600.0 * time_factor,
                    stable_for=300.0 * time_factor,
                ),
            )
            for c in capacities
        )
    summaries = execute(cells, workers=workers)
    result.std_total = summaries["std"].total_cost
    result.full_capacity_total = summaries["full"].total_cost

    for name in CONFIGURATIONS:
        totals: List[int] = []
        misses: List[int] = []
        for c in capacities:
            summary = summaries[(name, c)]
            totals.append(summary.total_cost)
            misses.append(summary.miss_cost)
        result.series[name] = {"total": totals, "miss": misses}

        result.expect(
            f"{name}: miss cost falls as capacity recovers",
            monotone_nonincreasing_rev(misses),
        )
        result.expect(
            f"{name}: graceful degradation — cost at c=0 within 2.5x of "
            f"full capacity",
            totals[0] <= 2.5 * max(totals[-1], 1),
        )

    updown = result.series["up-and-down"]["miss"]
    oncedown = result.series["once-down-always-down"]["miss"]
    result.expect(
        "once-down-always-down suffers at least as many miss hops as "
        "up-and-down at reduced capacity (recovery heals the trees; "
        "25% tolerance for victim-set luck at small networks)",
        sum(oncedown[:-1]) >= sum(updown[:-1]) * 0.75,
    )
    return result


def monotone_nonincreasing_rev(values: List[int]) -> bool:
    """Values indexed by ascending capacity should trend downward."""
    from repro.experiments.base import monotone_nonincreasing

    return monotone_nonincreasing([float(v) for v in values], slack=0.10)
