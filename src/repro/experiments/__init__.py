"""Experiment harnesses: one module per table/figure of the paper.

Every artifact of the paper's evaluation (§3.3-§3.7) has a module here
that sweeps the same axes, prints a table mirroring the paper's layout,
and checks the qualitative *shape* claims (who wins, monotone trends,
crossovers).  Each module exposes a ``run_*`` function returning a result
object with ``format_table()`` and ``check_expectations()``.

Scaling presets
---------------
Running the paper's exact operating points (1024-4096 nodes, up to 1000
queries/second for 3000 seconds) takes minutes per cell in a pure-Python
event simulator, so every experiment has two presets:

* ``small`` — scaled node count / rate / phase lengths that preserve the
  query density per node-cycle (and therefore the shape); used by the
  benchmark suite.
* ``paper`` — the paper's exact parameters; select with the environment
  variable ``REPRO_SCALE=paper`` or ``--scale paper`` on the CLI.

Workloads use a single key: the paper's cost model (§3.1) and all its
evaluation quantities are per-CUP-tree, and its query rates λ are the
aggregate Poisson rate of the tree under study.  Multi-key populations
are fully supported by the library (see the Zipf ablation bench and the
examples) — per-key trees are independent, so a K-key workload is K
superimposed copies of this experiment at rate λ/K each.
"""

from repro.experiments.config import Scale, resolve_scale
from repro.experiments.runner import run_config, run_pair

__all__ = ["Scale", "resolve_scale", "run_config", "run_pair"]
