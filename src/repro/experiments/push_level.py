"""Figures 3 and 4: total and miss cost versus push level (§3.3).

CUP propagates every update down the real query tree, but only to nodes
within ``p`` hops of the authority.  A push level of 0 is standard
caching (updates squelched at the root); deeper levels trade update
overhead for miss savings.  The paper's findings, which we check:

* miss cost decreases monotonically with push level;
* p = 0 costs the same as standard caching;
* the total-cost curve has a turning point (interior minimum) at low
  query rates, and tapers flat at high rates — there is *no single
  optimal push level* across workloads, which motivates the per-node
  cut-off policies of §3.4.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.core.policies import AllOutPolicy
from repro.experiments.base import ExperimentResult, monotone_nonincreasing
from repro.experiments.config import Scale, resolve_scale
from repro.experiments.executor import Cell, execute
from repro.metrics.report import Table


class PushLevelResult(ExperimentResult):
    """Series of (level -> total, miss) per query rate."""

    def __init__(self, scale: Scale, levels: List[int]):
        super().__init__()
        self.scale = scale
        self.levels = levels
        #: paper-λ -> {"total": [...], "miss": [...], "std_total": int}
        self.series: Dict[float, Dict[str, object]] = {}

    def add_rate(self, paper_rate: float, totals: List[int],
                 misses: List[int], std_total: int) -> None:
        self.series[paper_rate] = {
            "total": totals, "miss": misses, "std_total": std_total,
        }

    def optimal_level(self, paper_rate: float) -> int:
        totals = self.series[paper_rate]["total"]
        best = min(range(len(totals)), key=lambda i: totals[i])
        return self.levels[best]

    def optimal_total(self, paper_rate: float) -> int:
        return min(self.series[paper_rate]["total"])

    def format_table(self) -> str:
        headers = ["push level"]
        for rate in self.series:
            headers += [f"total λ={rate:g}", f"miss λ={rate:g}"]
        table = Table(self.title, headers)
        for i, level in enumerate(self.levels):
            cells: List[object] = [level]
            for rate in self.series:
                cells.append(self.series[rate]["total"][i])
                cells.append(self.series[rate]["miss"][i])
            table.add_row(*cells)
        std_cells: List[object] = ["std caching"]
        for rate in self.series:
            std_cells += [self.series[rate]["std_total"], ""]
        table.add_row(*std_cells)
        return table.render()


def default_levels(num_nodes: int) -> List[int]:
    """A level sweep reaching the grid diameter (every node)."""
    cols = 1 << ((num_nodes.bit_length()) // 2)
    rows = max(1, num_nodes // cols)
    diameter = cols // 2 + rows // 2
    levels = [0, 1, 2, 3, 4, 6, 8, 10, 12, 16, 20, 25, 30]
    return sorted({p for p in levels if p < diameter} | {diameter})


def run_push_level(
    scale: Optional[Scale] = None,
    paper_rates: Sequence[float] = (1.0, 10.0),
    levels: Optional[List[int]] = None,
    seed: int = 42,
    log_scale_figure: bool = False,
    workers: Optional[int] = None,
) -> PushLevelResult:
    """Reproduce Figure 3 (default rates) or Figure 4 (rates 100, 1000).

    Returns a :class:`PushLevelResult`; ``log_scale_figure`` only changes
    the title (the paper plots Figure 4 with a log y-axis).
    """
    scale = scale or resolve_scale()
    base = scale.config(seed=seed)
    levels = levels if levels is not None else default_levels(base.num_nodes)
    result = PushLevelResult(scale, levels)
    figure = "Figure 4" if log_scale_figure else "Figure 3"
    result.title = (
        f"{figure}: total/miss cost vs push level "
        f"(n={base.num_nodes}, scale={scale.name})"
    )

    active_rates = [r for r in paper_rates if r <= scale.max_rate]
    cells = []
    for paper_rate in active_rates:
        rate = scale.rate(paper_rate)
        cells.append(Cell(
            ("std", paper_rate),
            base.variant(mode="standard", query_rate=rate),
        ))
        cells.extend(
            Cell(
                (paper_rate, level),
                base.variant(
                    policy=AllOutPolicy(push_level=level), query_rate=rate
                ),
            )
            for level in levels
        )
    summaries = execute(cells, workers=workers)

    for paper_rate in active_rates:
        std = summaries[("std", paper_rate)]
        totals: List[int] = []
        misses: List[int] = []
        for level in levels:
            summary = summaries[(paper_rate, level)]
            totals.append(summary.total_cost)
            misses.append(summary.miss_cost)
        result.add_rate(paper_rate, totals, misses, std.total_cost)

        result.expect(
            f"λ={paper_rate:g}: miss cost decreases monotonically with "
            f"push level",
            monotone_nonincreasing([float(m) for m in misses]),
        )
        result.expect(
            f"λ={paper_rate:g}: push level 0 degrades to standard caching "
            f"(never worse than std+15%; cheaper is coalescing's gain)",
            totals[0] <= 1.15 * std.total_cost,
        )
        result.expect(
            f"λ={paper_rate:g}: best push level beats standard caching",
            min(totals) < std.total_cost,
        )
        result.expect(
            f"λ={paper_rate:g}: deep push beats shallow push on miss cost",
            misses[-1] < misses[0],
        )
    return result
