"""Persistent on-disk cache for simulation results.

Runs are deterministic functions of their :class:`CupConfig` (plus an
optional fault schedule), so a finished cell never needs to be re-run —
not even by a different process on a different day.  This module stores
one :class:`MetricsSummary` per run key as a small JSON file under a
cache root (default ``.repro-cache/``), namespaced by a *code
fingerprint* so that any change to the simulation source invalidates
every cached result at once.

Layering: the in-process memo in :mod:`repro.experiments.runner` sits in
front of this cache; the parallel executor consults both.  A process-
wide active cache is configured once (CLI flags, benchmark fixtures, or
environment variables) and picked up lazily by the runner.

Environment:

* ``REPRO_CACHE_DIR`` — cache root (default ``.repro-cache``);
* ``REPRO_NO_CACHE`` — any of ``1/true/yes`` disables the disk cache.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import Dict, Optional, Tuple, Union

from repro.metrics.collector import MetricsSummary

CACHE_DIR_ENV = "REPRO_CACHE_DIR"
NO_CACHE_ENV = "REPRO_NO_CACHE"
DEFAULT_CACHE_DIR = ".repro-cache"

#: Subpackages whose source determines a run's outcome.  Orchestration
#: code (experiments harnesses, CLI, reports) is deliberately excluded:
#: editing a table layout must not throw away hours of cached sweeps.
FINGERPRINTED_PACKAGES = (
    "core", "sim", "workload", "overlay", "replicas", "metrics",
    # Scenario compilation (phase scheduling, stream wiring, partition
    # island dealing) shapes scenario-cell results just like the
    # protocol does — a dsl.py edit must invalidate cached scenarios.
    "scenarios",
)

#: Files outside those packages that still shape results —
#: ``executor.py`` builds the network/fault schedule for every cell and
#: ``topology.py`` decides how cells share built overlays.
FINGERPRINTED_FILES = (
    "experiments/executor.py",
    "experiments/topology.py",
)

_fingerprint: Optional[str] = None


def code_fingerprint() -> str:
    """Hex digest over every result-affecting source file (memoized)."""
    global _fingerprint
    if _fingerprint is None:
        digest = hashlib.sha256()
        package_root = Path(__file__).resolve().parent.parent
        paths = [
            path
            for package in FINGERPRINTED_PACKAGES
            for path in (package_root / package).rglob("*.py")
        ]
        paths += [package_root / name for name in FINGERPRINTED_FILES]
        for path in sorted(paths):
            digest.update(str(path.relative_to(package_root)).encode())
            digest.update(b"\0")
            digest.update(path.read_bytes())
            digest.update(b"\0")
        _fingerprint = digest.hexdigest()[:16]
    return _fingerprint


@dataclasses.dataclass
class CacheStats:
    """Counters reported back to the user after a sweep."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    errors: int = 0

    def __str__(self) -> str:
        out = f"{self.hits} hits, {self.misses} misses, {self.stores} stored"
        if self.errors:
            out += f", {self.errors} write errors"
        return out


class RunCache:
    """Maps run keys to ``MetricsSummary`` JSON files under ``root``.

    Keys are the flat tuples produced by the runner/executor key
    functions; files live under ``root/<fingerprint>/<keyhash>.json``
    and embed the full key ``repr`` so hash collisions and schema drift
    both degrade to cache misses, never to wrong results.
    """

    def __init__(self, root: Union[str, Path],
                 fingerprint: Optional[str] = None):
        self.root = Path(root)
        self.fingerprint = fingerprint or code_fingerprint()
        self.stats = CacheStats()

    def _path(self, key: tuple) -> Path:
        digest = hashlib.sha256(repr(key).encode()).hexdigest()[:32]
        return self.root / self.fingerprint / f"{digest}.json"

    def get(self, key: tuple) -> Optional[MetricsSummary]:
        """The cached summary for ``key``, or ``None`` on a miss."""
        path = self._path(key)
        try:
            payload = json.loads(path.read_text())
            if payload.get("key") != repr(key):
                raise ValueError("cache key mismatch")
            summary = MetricsSummary.from_dict(payload["summary"])
        except (OSError, ValueError, KeyError, TypeError):
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return summary

    def put(self, key: tuple, summary: MetricsSummary) -> None:
        """Persist ``summary`` under ``key`` (atomic replace).

        Best-effort: an unwritable cache directory must never kill a
        sweep that already paid for its simulations, so write failures
        only bump ``stats.errors`` (surfaced in the final report line).
        """
        payload = {
            "key": repr(key),
            "fingerprint": self.fingerprint,
            "summary": summary.to_dict(),
        }
        tmp = None
        try:
            path = self._path(key)
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(
                dir=path.parent, prefix=path.stem, suffix=".tmp"
            )
            with os.fdopen(fd, "w") as handle:
                json.dump(payload, handle)
            os.replace(tmp, path)
        except OSError:
            if tmp is not None:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
            self.stats.errors += 1
            return
        self.stats.stores += 1

    def __len__(self) -> int:
        try:
            return sum(
                1 for _ in (self.root / self.fingerprint).glob("*.json")
            )
        except OSError:
            return 0


class WriteOnlyCache(RunCache):
    """A cache that records results but never serves them.

    ``repro sweep`` without ``--resume`` runs every cell fresh, yet each
    finished cell must still flush to disk so a later ``--resume`` can
    skip it — exactly a cache with reads disabled.
    """

    def get(self, key: tuple) -> Optional[MetricsSummary]:
        self.stats.misses += 1
        return None


# ----------------------------------------------------------------------
# Process-wide active cache
# ----------------------------------------------------------------------

_state: Dict[str, object] = {"configured": False, "cache": None}


def configure(
    cache_dir: Optional[Union[str, Path]] = None,
    enabled: bool = True,
    fingerprint: Optional[str] = None,
) -> Optional[RunCache]:
    """Select the process-wide disk cache (CLI and fixtures call this).

    ``enabled=False`` turns persistent caching off entirely; otherwise
    the cache root is ``cache_dir`` > ``$REPRO_CACHE_DIR`` >
    ``.repro-cache``.  Returns the active :class:`RunCache` (or None).
    """
    if not enabled:
        _state.update(configured=True, cache=None)
        return None
    root = cache_dir or os.environ.get(CACHE_DIR_ENV, DEFAULT_CACHE_DIR)
    cache = RunCache(root, fingerprint)
    _state.update(configured=True, cache=cache)
    return cache


def install(cache: Optional[RunCache]) -> Optional[RunCache]:
    """Install a pre-built cache object as the process-wide active cache.

    :func:`configure` covers the common cases; this is for callers that
    need a cache subclass (e.g. :class:`WriteOnlyCache`).
    """
    _state.update(configured=True, cache=cache)
    return cache


def active() -> Optional[RunCache]:
    """The process-wide cache, lazily configured from the environment."""
    if not _state["configured"]:
        disabled = os.environ.get(NO_CACHE_ENV, "").lower() in (
            "1", "true", "yes",
        )
        configure(enabled=not disabled)
    return _state["cache"]  # type: ignore[return-value]


def snapshot() -> Tuple[bool, Optional[RunCache]]:
    """Current configuration, for save/restore in tests."""
    return (bool(_state["configured"]), _state["cache"])  # type: ignore


def restore(saved: Tuple[bool, Optional[RunCache]]) -> None:
    """Undo a :func:`configure` (tests pair this with :func:`snapshot`)."""
    _state.update(configured=saved[0], cache=saved[1])


def reset() -> None:
    """Forget the configuration; the next :func:`active` re-reads env."""
    _state.update(configured=False, cache=None)
