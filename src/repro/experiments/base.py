"""Common result plumbing for experiment harnesses."""

from __future__ import annotations

import dataclasses
from typing import List


@dataclasses.dataclass
class Expectation:
    """One qualitative shape claim from the paper, checked on our data."""

    claim: str
    holds: bool

    def __str__(self) -> str:
        marker = "PASS" if self.holds else "FAIL"
        return f"[{marker}] {self.claim}"


class ExperimentResult:
    """Base class: carries expectations and renders a report."""

    title: str = ""

    def __init__(self) -> None:
        self.expectations: List[Expectation] = []

    def expect(self, claim: str, holds: bool) -> None:
        self.expectations.append(Expectation(claim, bool(holds)))

    def check_expectations(self) -> List[Expectation]:
        return list(self.expectations)

    def all_expectations_hold(self) -> bool:
        return all(e.holds for e in self.expectations)

    def format_table(self) -> str:  # pragma: no cover - overridden
        raise NotImplementedError

    def report(self) -> str:
        """Table plus the expectation checklist, ready to print."""
        lines = [self.format_table(), ""]
        lines.extend(str(e) for e in self.expectations)
        return "\n".join(lines)


def monotone_nonincreasing(values: List[float], slack: float = 0.05) -> bool:
    """Whether a series trends downward (each step may backslide by at
    most ``slack`` of the running maximum — simulation noise tolerance)."""
    best = float("inf")
    for v in values:
        if v > best * (1.0 + slack) + 1e-9:
            return False
        best = min(best, v)
    return True


def monotone_nondecreasing(values: List[float], slack: float = 0.05) -> bool:
    """Mirror of :func:`monotone_nonincreasing` for upward trends."""
    best = -float("inf")
    for v in values:
        if v < best * (1.0 - slack) - 1e-9:
            return False
        best = max(best, v)
    return True
