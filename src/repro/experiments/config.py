"""Scaling presets shared by the experiment harnesses.

The ``small`` preset shrinks the network 4x (1024 -> 256 nodes) and the
time axis 2x (entry lifetime 300 s -> 150 s, query phase 3000 s ->
1500 s, keeping ten refresh cycles inside the query phase exactly as the
paper has).  Query rates are scaled with the node count so the *query
density* — expected queries per node per refresh cycle, the quantity
that determines cache hit rates, subscription trees and justification
probabilities — matches the paper's operating points.
"""

from __future__ import annotations

import dataclasses
import os
from typing import Optional, Sequence

from repro.core.protocol import CupConfig

#: Environment variable selecting the preset for benchmark runs.
SCALE_ENV = "REPRO_SCALE"


@dataclasses.dataclass(frozen=True)
class Scale:
    """One preset: base topology/timing plus the rate-mapping rule."""

    name: str
    num_nodes: int
    entry_lifetime: float
    query_duration: float
    warmup: float
    drain: float
    #: Multiplier applied to the paper's λ values so query density per
    #: node-cycle is preserved.  Density = λ * lifetime / n, so the
    #: factor is (n_preset / n_paper) * (lifetime_paper / lifetime_preset)
    #: — the paper's λ=1 on 1024 nodes with 300 s entries averages 0.29
    #: queries per node per refresh cycle, and every preset reproduces
    #: exactly that at its mapped rate.
    rate_factor: float
    #: Largest paper-λ this preset runs (λ=1000 at full duration is a
    #: multi-minute cell; the small preset caps the sweep instead of
    #: silently truncating the run).
    max_rate: float
    #: Per-hop link delay, scaled with the time axis so the staleness
    #: window during refresh propagation keeps the paper's proportion to
    #: the entry lifetime.
    link_delay: float = 0.05

    def config(self, **overrides) -> CupConfig:
        """A CupConfig for this preset (single-key CUP-tree workload)."""
        base = dict(
            num_nodes=self.num_nodes,
            total_keys=1,
            entry_lifetime=self.entry_lifetime,
            query_start=self.warmup,
            query_duration=self.query_duration,
            drain=self.drain,
            gc_interval=self.entry_lifetime,
            link_delay=self.link_delay,
        )
        base.update(overrides)
        return CupConfig(**base)

    def rate(self, paper_rate: float) -> float:
        """Map one of the paper's λ values into this preset."""
        return paper_rate * self.rate_factor

    def rates(self, paper_rates: Sequence[float]) -> list[float]:
        """Map and cap a λ sweep."""
        return [self.rate(r) for r in paper_rates if r <= self.max_rate]


SMALL = Scale(
    name="small",
    num_nodes=256,
    entry_lifetime=150.0,
    query_duration=1500.0,
    warmup=300.0,
    drain=300.0,
    rate_factor=(256 / 1024) * (300.0 / 150.0),
    max_rate=100.0,
    link_delay=0.05 * (150.0 / 300.0),
)

PAPER = Scale(
    name="paper",
    num_nodes=1024,
    entry_lifetime=300.0,
    query_duration=3000.0,
    warmup=600.0,
    drain=600.0,
    rate_factor=1.0,
    max_rate=1000.0,
)

#: A minimal preset for the test suite: seconds-fast, same shape.
TINY = Scale(
    name="tiny",
    num_nodes=64,
    entry_lifetime=100.0,
    query_duration=1000.0,
    warmup=200.0,
    drain=200.0,
    rate_factor=(64 / 1024) * (300.0 / 100.0),
    max_rate=20.0,
    link_delay=0.05 * (100.0 / 300.0),
)

_SCALES = {s.name: s for s in (SMALL, PAPER, TINY)}


def resolve_scale(name: Optional[str] = None) -> Scale:
    """Pick a preset: explicit name > $REPRO_SCALE > small."""
    if name is None:
        name = os.environ.get(SCALE_ENV, "small")
    try:
        return _SCALES[name]
    except KeyError:
        raise ValueError(
            f"unknown scale {name!r}; choose from {sorted(_SCALES)}"
        ) from None
