"""Table 3: multiple replicas per key and the cut-off trigger fix (§3.6).

With R replicas per key, each replica's refresh arrives at the authority
and propagates separately, so subscribed nodes see R updates per
lifetime.  A *naive* cut-off implementation re-evaluates (and resets the
popularity measure) on every update arrival — so the more replicas, the
less likely a node sees queries between evaluations, and it wrongly cuts
off: **more replicas cause more misses**.  The fix triggers the decision
only on updates for one designated replica, making it independent of the
replica count.

Shape claims checked:

* naive cut-off: misses grow with the replica count;
* replica-independent cut-off: misses do not grow with the replica count;
* total cost grows with the replica count and eventually overtakes
  standard caching (the paper sees the crossover at 8 replicas).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.experiments.base import ExperimentResult, monotone_nondecreasing
from repro.experiments.config import Scale, resolve_scale
from repro.experiments.executor import Cell, execute
from repro.metrics.report import Table


class ReplicasResult(ExperimentResult):
    """Rows per replica count: naive vs replica-independent cut-off."""

    def __init__(self) -> None:
        super().__init__()
        self.replica_counts: List[int] = []
        self.naive_miss_cost: List[int] = []
        self.naive_misses: List[int] = []
        self.indep_miss_cost: List[int] = []
        self.indep_misses: List[int] = []
        self.indep_total: List[int] = []
        self.std_total: int = 0

    def add(self, replicas: int, naive_cost: int, naive_misses: int,
            indep_cost: int, indep_misses: int, indep_total: int) -> None:
        self.replica_counts.append(replicas)
        self.naive_miss_cost.append(naive_cost)
        self.naive_misses.append(naive_misses)
        self.indep_miss_cost.append(indep_cost)
        self.indep_misses.append(indep_misses)
        self.indep_total.append(indep_total)

    def format_table(self) -> str:
        table = Table(
            self.title,
            [
                "Replicas",
                "Naive miss cost (misses)",
                "Indep miss cost (misses)",
                "Indep total cost",
            ],
        )
        for i, r in enumerate(self.replica_counts):
            table.add_row(
                r,
                f"{self.naive_miss_cost[i]} ({self.naive_misses[i]})",
                f"{self.indep_miss_cost[i]} ({self.indep_misses[i]})",
                self.indep_total[i],
            )
        return (
            table.render()
            + f"\nStandard caching total cost: {self.std_total}"
        )


def run_replicas_sweep(
    scale: Optional[Scale] = None,
    replica_counts: Sequence[int] = (1, 2, 5, 10, 50, 100),
    paper_rate: float = 1.0,
    seed: int = 42,
    workers: Optional[int] = None,
) -> ReplicasResult:
    """Reproduce Table 3 (descending rows in the paper; ascending here)."""
    scale = scale or resolve_scale()
    base = scale.config(seed=seed, query_rate=scale.rate(paper_rate))
    result = ReplicasResult()
    result.title = (
        f"Table 3: miss cost & misses vs replicas per key "
        f"(n={base.num_nodes}, paper-λ={paper_rate:g}, scale={scale.name})"
    )

    cells = [Cell("std", base.variant(mode="standard"))]
    for replicas in replica_counts:
        cells.append(Cell(
            ("naive", replicas),
            base.variant(
                replicas_per_key=replicas, replica_independent_cutoff=False
            ),
        ))
        cells.append(Cell(
            ("indep", replicas),
            base.variant(
                replicas_per_key=replicas, replica_independent_cutoff=True
            ),
        ))
    summaries = execute(cells, workers=workers)
    result.std_total = summaries["std"].total_cost

    for replicas in replica_counts:
        naive = summaries[("naive", replicas)]
        indep = summaries[("indep", replicas)]
        result.add(
            replicas,
            naive.miss_cost, naive.misses,
            indep.miss_cost, indep.misses, indep.total_cost,
        )

    result.expect(
        "naive cut-off: misses grow with the replica count",
        result.naive_misses[-1] > result.naive_misses[0],
    )
    result.expect(
        "replica-independent cut-off: misses do not grow with replicas "
        "(within 10%)",
        max(result.indep_misses) <= result.indep_misses[0] * 1.10 + 2,
    )
    result.expect(
        "naive cut-off suffers more misses than replica-independent at "
        "the highest replica count",
        result.naive_misses[-1] > result.indep_misses[-1],
    )
    result.expect(
        "total cost grows with the replica count",
        monotone_nondecreasing([float(t) for t in result.indep_total]),
    )
    result.expect(
        "enough replicas make CUP's total overtake standard caching",
        result.indep_total[-1] > result.std_total,
    )
    return result
