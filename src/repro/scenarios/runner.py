"""Execute scenarios with runtime invariants attached.

:func:`run_scenario` is the one-stop entry point: build the config,
wire the network, attach an :class:`~repro.invariants.InvariantChecker`
relaxed exactly per the scenario's declared hazards, compile the
phases, run, and return a :class:`ScenarioResult` carrying the metrics,
the invariant verdict and the stressor narration.

The checker is read-only, so a scenario's :class:`MetricsSummary` is
identical whether invariants are on or off — which is what lets the
differential-oracle tests compare invariant-checked runs against plain
executor cells.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Tuple

from repro.core.protocol import CupConfig, CupNetwork
from repro.invariants.checker import InvariantChecker
from repro.metrics.collector import MetricsSummary
from repro.scenarios.dsl import Scenario


@dataclasses.dataclass
class ScenarioResult:
    """Everything one scenario run produced."""

    scenario: Scenario
    config: CupConfig
    summary: MetricsSummary
    checker: Optional[InvariantChecker]
    events: List[Tuple[float, str]]
    network: CupNetwork

    @property
    def ok(self) -> bool:
        """True when invariants were checked and none was violated."""
        return self.checker is not None and self.checker.ok

    def report(self) -> str:
        scenario = self.scenario
        summary = self.summary
        lines = [
            f"scenario {scenario.name!r}: {scenario.description}",
            f"  phases: {', '.join(type(p).__name__ for p in scenario.phases)}"
            f" ({scenario.total_duration:.0f}s query window)",
        ]
        for time, text in self.events:
            lines.append(f"  t={time:8.1f}  {text}")
        lines.append(
            f"  queries={summary.queries_posted}  "
            f"miss_cost={summary.miss_cost}  "
            f"overhead={summary.overhead_cost}  "
            f"total={summary.total_cost}  "
            f"answered={summary.answers_delivered}"
        )
        transport = self.network.transport
        if transport.lost or transport.duplicated or transport.reordered:
            lines.append(
                f"  transport faults: lost={transport.lost}  "
                f"duplicated={transport.duplicated}  "
                f"reordered={transport.reordered}"
            )
        recovery = self.network.metrics.recovery_report()
        if any(recovery.values()):
            lines.append(
                "  recovery: " + "  ".join(
                    f"{name}={value}" for name, value in recovery.items()
                )
            )
        if self.checker is None:
            lines.append("  invariants: not checked")
        else:
            lines.append("  " + self.checker.report().replace("\n", "\n  "))
        return "\n".join(lines)


def run_scenario(
    scenario: Scenario,
    seed: int = 42,
    base_config: Optional[CupConfig] = None,
    invariants: bool = True,
    raise_on_violation: bool = True,
    check_interval: Optional[float] = 30.0,
    extra_hazards: Tuple[str, ...] = (),
    convergence: bool = False,
    convergence_slack: float = 15.0,
) -> ScenarioResult:
    """Run one scenario end to end.

    Parameters
    ----------
    scenario:
        The composition to run (built-in or hand-assembled).
    seed, base_config:
        Deployment inputs; the scenario's overrides and phase schedule
        are applied on top (see :meth:`Scenario.build_config`).
    invariants:
        Attach the runtime checker (with the scenario's hazards, plus
        ``extra_hazards``) and verify quiescence after the run.
    raise_on_violation:
        When True, the first violation raises
        :class:`~repro.invariants.InvariantViolationError` from inside
        the offending event; when False, violations accumulate on the
        result's checker.
    check_interval:
        Simulated seconds between periodic structural audits (``None``
        disables the periodic sweep; the quiescence check still runs).
    convergence:
        After the run, additionally audit quiescence *convergence*
        (:meth:`InvariantChecker.audit_convergence`): every subscribed
        node holds the authority's settled versions or recorded a
        degraded read.  The unreliable-transport analogue of the
        loss-freedom check; requires ``invariants=True``.
    convergence_slack:
        Seconds an authority version must have been settled before the
        convergence audit demands it downstream.
    """
    config = scenario.build_config(base=base_config, seed=seed)
    network = CupNetwork(config)
    checker = None
    if invariants:
        checker = network.attach_invariants(
            hazards=scenario.hazards() | frozenset(extra_hazards),
            check_interval=check_interval,
            raise_immediately=raise_on_violation,
        )
    if convergence and checker is None:
        raise ValueError("convergence audit requires invariants=True")
    runtime = scenario.compile_onto(network)
    summary = network.run()
    if convergence:
        checker.audit_convergence(slack=convergence_slack)
    return ScenarioResult(
        scenario=scenario,
        config=config,
        summary=summary,
        checker=checker,
        events=list(runtime.events),
        network=network,
    )
