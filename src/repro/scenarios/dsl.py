"""A composable scenario DSL for adversarial CUP runs.

A :class:`Scenario` is a named sequence of timed :class:`Phase`\\ s laid
over the query window of a :class:`~repro.core.protocol.CupNetwork`.
Each phase contributes one stressor for its duration:

* :class:`Quiet` — no stressor (warm-up, recovery, referee segments);
* :class:`ChurnBurst` — a correlated burst of Poisson membership churn
  (§2.9);
* :class:`Partition` — the overlay splits into islands that cannot
  exchange messages, then heals when the phase ends (uses the
  transport's drop-rule layer);
* :class:`FlashCrowd` — a single key suddenly captures a share of all
  queries (§2.8's flash-crowd motivation);
* :class:`PopularityDrift` — the hot spot rotates across keys,
  modelling Zipf-head drift;
* :class:`CapacityFault` — a random node subset degrades to reduced
  update capacity (§3.7), restored when the phase ends;
* :class:`MessageLoss` / :class:`DuplicateDelivery` / :class:`DelayJitter`
  — probabilistic transport faults (seeded, per-recipient) via the
  transport's :class:`~repro.sim.network.LinkFaults` layer, removed when
  the phase ends;
* :class:`NodeCrashRecover` — a deterministic victim set crashes
  (silent: transport detached, overlay intact) at phase start and
  restarts at phase end, exercising gap detection over the dark window.

A scenario may additionally carry a :class:`ChaosSpec` — a blanket
loss/duplication/jitter overlay covering the whole query window — which
is how :func:`with_chaos` turns any existing scenario into its
unreliable-transport variant.

Phases are frozen dataclasses, so scenarios are hashable, picklable and
usable as part of an experiment cell's cache key.  Compilation
(:meth:`Scenario.compile_onto`) schedules every stressor on the
network's simulator and wires the workload's key selector; it never
draws from the workload's random streams, so a scenario run with the
scenario's stressors disabled is draw-for-draw the plain run.

Every phase also declares the invariant *hazards* it introduces (see
:mod:`repro.invariants`), so the scenario runner can attach a checker
that relaxes exactly the properties this composition legitimately
breaks — and nothing more.
"""

from __future__ import annotations

import dataclasses
from typing import (
    TYPE_CHECKING,
    Any,
    ClassVar,
    Dict,
    FrozenSet,
    List,
    Optional,
    Tuple,
)

from repro.core.protocol import CupConfig
from repro.sim.network import LinkFaults
from repro.workload.churn import ChurnSchedule
from repro.workload.faults import CapacityFaultSchedule
from repro.workload.keyspace import FlashCrowdKeys, KeySelector, RotatingHotKeys

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.protocol import CupNetwork


# ----------------------------------------------------------------------
# Phases
# ----------------------------------------------------------------------


@dataclasses.dataclass(frozen=True)
class Phase:
    """One timed segment of a scenario.  Subclasses add stressors."""

    duration: float

    #: Invariant hazards this phase introduces (subclasses override).
    #: A ClassVar, not a field: it is a property of the phase *type*
    #: and must stay out of cache keys and comparisons.
    hazards: ClassVar[FrozenSet[str]] = frozenset()

    def validate(self) -> None:
        if self.duration <= 0:
            raise ValueError(
                f"{type(self).__name__}: duration must be positive, "
                f"got {self.duration}"
            )


@dataclasses.dataclass(frozen=True)
class Quiet(Phase):
    """No stressor: plain traffic (warm-up / recovery segments)."""


@dataclasses.dataclass(frozen=True)
class ChurnBurst(Phase):
    """Correlated membership churn at ``rate`` events/second (§2.9)."""

    rate: float = 0.1
    join_fraction: float = 0.5
    graceful_fraction: float = 0.5
    hazards = frozenset({"churn"})

    def validate(self) -> None:
        super().validate()
        if self.rate <= 0:
            raise ValueError(f"ChurnBurst: rate must be positive, got {self.rate}")
        for name in ("join_fraction", "graceful_fraction"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(
                    f"ChurnBurst: {name} must be in [0, 1], got {value}"
                )


@dataclasses.dataclass(frozen=True)
class Partition(Phase):
    """The overlay splits into ``groups`` islands, healing at phase end.

    Islands are deterministic: live members sorted by id are dealt
    round-robin at cut time.  Messages crossing islands are lost in
    transit (hop cost still charged); nodes that join mid-partition
    belong to no island and communicate freely.
    """

    groups: int = 2
    hazards = frozenset({"partition"})

    def validate(self) -> None:
        super().validate()
        if self.groups < 2:
            raise ValueError(
                f"Partition: need at least 2 groups, got {self.groups}"
            )


@dataclasses.dataclass(frozen=True)
class FlashCrowd(Phase):
    """One key captures ``share`` of all queries for the phase (§2.8)."""

    hot_key_index: int = 0
    share: float = 0.8

    def validate(self) -> None:
        super().validate()
        if not 0.0 <= self.share <= 1.0:
            raise ValueError(
                f"FlashCrowd: share must be in [0, 1], got {self.share}"
            )
        if self.hot_key_index < 0:
            raise ValueError(
                f"FlashCrowd: hot_key_index must be >= 0, "
                f"got {self.hot_key_index}"
            )


@dataclasses.dataclass(frozen=True)
class PopularityDrift(Phase):
    """The popularity head rotates through ``hot_key_count`` keys."""

    period: float = 60.0
    share: float = 0.6
    hot_key_count: int = 4

    def validate(self) -> None:
        super().validate()
        if self.period <= 0:
            raise ValueError(
                f"PopularityDrift: period must be positive, got {self.period}"
            )
        if not 0.0 <= self.share <= 1.0:
            raise ValueError(
                f"PopularityDrift: share must be in [0, 1], got {self.share}"
            )
        if self.hot_key_count < 1:
            raise ValueError(
                f"PopularityDrift: hot_key_count must be >= 1, "
                f"got {self.hot_key_count}"
            )


@dataclasses.dataclass(frozen=True)
class CapacityFault(Phase):
    """A random ``fraction`` of nodes degrades to ``reduced`` capacity
    for the phase, then recovers (§3.7's Up-And-Down episode shape)."""

    fraction: float = 0.2
    reduced: float = 0.25
    hazards = frozenset({"capacity"})

    def validate(self) -> None:
        super().validate()
        for name in ("fraction", "reduced"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(
                    f"CapacityFault: {name} must be in [0, 1], got {value}"
                )


@dataclasses.dataclass(frozen=True)
class MessageLoss(Phase):
    """Each overlay send is lost in transit with probability ``rate``.

    Loss is drawn per recipient (a fan-out to k children makes k
    decisions) from the dedicated ``link-faults`` stream; hop cost is
    still charged, mirroring the drop-rule layer.  Run with
    ``reliable_transport=False`` or subscribed caches go silently stale.
    """

    rate: float = 0.1
    hazards = frozenset({"loss"})

    def validate(self) -> None:
        super().validate()
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError(
                f"MessageLoss: rate must be in [0, 1], got {self.rate}"
            )


@dataclasses.dataclass(frozen=True)
class DuplicateDelivery(Phase):
    """Each surviving overlay send is delivered twice with probability
    ``rate`` — the at-least-once transport the recovery layer's
    duplicate suppression exists for."""

    rate: float = 0.1
    hazards = frozenset({"duplication"})

    def validate(self) -> None:
        super().validate()
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError(
                f"DuplicateDelivery: rate must be in [0, 1], got {self.rate}"
            )


@dataclasses.dataclass(frozen=True)
class DelayJitter(Phase):
    """Each overlay send gains up to ``jitter`` seconds of extra delay,
    letting later sends overtake earlier ones on the same link (the
    reorder fault)."""

    jitter: float = 0.2
    hazards = frozenset({"reorder"})

    def validate(self) -> None:
        super().validate()
        if self.jitter <= 0:
            raise ValueError(
                f"DelayJitter: jitter must be positive, got {self.jitter}"
            )


@dataclasses.dataclass(frozen=True)
class NodeCrashRecover(Phase):
    """``count`` deterministic victims crash silently at phase start and
    restart at phase end, state intact.

    A crash-recover is a process restart, not a departure: the overlay
    keeps routing through the corpse, messages to it drop, and on
    recovery the node's sequence watermarks expose exactly the updates
    it slept through — gap detection and pull-on-miss degradation then
    repair the window.  Victims are drawn from the ``scenario-crashes``
    stream; the count is capped so at least two nodes stay up.
    """

    count: int = 2
    hazards = frozenset({"crash"})

    def validate(self) -> None:
        super().validate()
        if self.count < 1:
            raise ValueError(
                f"NodeCrashRecover: count must be >= 1, got {self.count}"
            )


# ----------------------------------------------------------------------
# Scenario
# ----------------------------------------------------------------------


@dataclasses.dataclass(frozen=True)
class ChaosSpec:
    """A blanket transport-fault overlay for a scenario's query window.

    Unlike the phase stressors, a chaos spec is *ambient*: one
    :class:`~repro.sim.network.LinkFaults` rule installed at query start
    and removed at query end, underneath whatever the phases do.  The
    drain stays clean so recovery can finish and the convergence audit
    has a settled network to judge.
    """

    loss: float = 0.0
    duplicate: float = 0.0
    jitter: float = 0.0

    def __post_init__(self) -> None:
        for name in ("loss", "duplicate"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(
                    f"ChaosSpec: {name} must be in [0, 1], got {value}"
                )
        if self.jitter < 0:
            raise ValueError(
                f"ChaosSpec: jitter must be >= 0, got {self.jitter}"
            )
        if self.loss == 0.0 and self.duplicate == 0.0 and self.jitter == 0.0:
            raise ValueError("ChaosSpec: at least one fault must be nonzero")

    def hazards(self) -> FrozenSet[str]:
        result = set()
        if self.loss:
            result.add("loss")
        if self.duplicate:
            result.add("duplication")
        if self.jitter:
            result.add("reorder")
        return frozenset(result)


@dataclasses.dataclass(frozen=True)
class Scenario:
    """A named, hashable composition of phases plus config overrides.

    ``overrides`` is a tuple of ``(CupConfig field, value)`` pairs so
    the scenario stays hashable; :meth:`build_config` applies them and
    pins ``query_duration`` to the total phase time — phases tile the
    query window exactly.
    """

    name: str
    description: str
    phases: Tuple[Phase, ...]
    overrides: Tuple[Tuple[str, Any], ...] = ()
    #: Ambient transport-fault overlay for the whole query window
    #: (see :class:`ChaosSpec`); None for a clean transport.
    chaos: Optional[ChaosSpec] = None

    def __post_init__(self) -> None:
        if not self.phases:
            raise ValueError(f"scenario {self.name!r} has no phases")
        for phase in self.phases:
            phase.validate()
        names = [field for field, _ in self.overrides]
        if len(set(names)) != len(names):
            raise ValueError(
                f"scenario {self.name!r} has duplicate overrides"
            )

    # -- derived properties --------------------------------------------

    @property
    def total_duration(self) -> float:
        return sum(phase.duration for phase in self.phases)

    def hazards(self) -> FrozenSet[str]:
        """Union of every phase's (and the chaos overlay's) hazards."""
        result: FrozenSet[str] = frozenset()
        for phase in self.phases:
            result |= phase.hazards
        if self.chaos is not None:
            result |= self.chaos.hazards()
        return result

    def key(self) -> tuple:
        """Stable identity tuple (used in experiment-cell cache keys)."""
        return (
            self.name,
            tuple(
                (type(phase).__name__,) + dataclasses.astuple(phase)
                for phase in self.phases
            ),
            self.overrides,
            dataclasses.astuple(self.chaos) if self.chaos is not None
            else None,
        )

    # -- config --------------------------------------------------------

    def build_config(self, base: Optional[CupConfig] = None, **extra) -> CupConfig:
        """The scenario's concrete :class:`CupConfig`.

        Starts from ``base`` (or the module default), applies the
        scenario's overrides, then ``extra`` (e.g. a seed), and finally
        pins the query window to the phase schedule.
        """
        config = base if base is not None else default_base_config()
        if self.overrides:
            config = config.variant(**dict(self.overrides))
        if extra:
            config = config.variant(**extra)
        return config.variant(query_duration=self.total_duration)

    # -- compilation ---------------------------------------------------

    def compile_onto(self, network: "CupNetwork") -> "ScenarioRuntime":
        """Schedule every phase's stressors onto a wired network.

        Must be called before :meth:`CupNetwork.run` (it attaches the
        workload when any phase shapes the key distribution).  Returns
        the runtime handle holding the scenario event log.
        """
        runtime = ScenarioRuntime(self, network)
        runtime._compile()
        return runtime


def with_chaos(
    scenario: Scenario,
    loss: float = 0.2,
    duplicate: float = 0.1,
    jitter: float = 0.1,
) -> Scenario:
    """Any scenario, rerun over an unreliable transport.

    Lays a :class:`ChaosSpec` over the scenario's whole query window and
    forces ``reliable_transport=False`` (unless the scenario already
    pins it) so every node carries the recovery state machine.  The
    returned scenario's hazard set grows accordingly, relaxing exactly
    the invariants a faulty transport legitimately breaks.
    """
    spec = ChaosSpec(loss=loss, duplicate=duplicate, jitter=jitter)
    overrides = scenario.overrides
    if not any(field == "reliable_transport" for field, _ in overrides):
        overrides = overrides + (("reliable_transport", False),)
    return dataclasses.replace(
        scenario,
        name=f"{scenario.name}+chaos",
        description=(
            f"{scenario.description} — under chaos (loss={loss:.0%}, "
            f"dup={duplicate:.0%}, jitter={jitter}s)"
        ),
        overrides=overrides,
        chaos=spec,
    )


def default_base_config() -> CupConfig:
    """The compact deployment the built-in scenarios run on.

    Small enough that a full scenario (with invariants on) finishes in
    well under a second, big enough that propagation trees have real
    depth.
    """
    return CupConfig(
        num_nodes=32,
        total_keys=8,
        query_rate=4.0,
        entry_lifetime=60.0,
        query_start=120.0,
        drain=90.0,
        gc_interval=60.0,
    )


# ----------------------------------------------------------------------
# Runtime (compiled scenario)
# ----------------------------------------------------------------------


class ScenarioRuntime:
    """A scenario bound to one network: scheduled stressors + event log.

    Every scheduled stressor transition is a *bound method* with plain
    arguments — never a closure — and mid-phase state (installed rule
    handles, degraded schedules, crash victims) lives in dicts keyed by
    phase position.  That keeps the compiled runtime, and therefore the
    whole network object graph, picklable: a checkpoint taken mid-phase
    restores with its pending heal/restore/recover events intact.
    """

    def __init__(self, scenario: Scenario, network: "CupNetwork"):
        self.scenario = scenario
        self.network = network
        #: (time, description) narration of every stressor transition.
        self.events: List[Tuple[float, str]] = []
        self._churn: Optional[ChurnSchedule] = None
        self._active_partitions: Dict[int, int] = {}
        # Mid-phase stressor state, keyed by phase index (chaos uses the
        # dedicated "chaos" token in _active_faults).
        self._capacity_schedules: Dict[int, CapacityFaultSchedule] = {}
        self._active_faults: Dict[Any, int] = {}
        self._crash_victims: Dict[int, List[Any]] = {}

    # -- helpers -------------------------------------------------------

    def _log(self, text: str) -> None:
        self.events.append((self.network.sim.now, text))

    def _churn_schedule(self) -> ChurnSchedule:
        if self._churn is None:
            self._churn = ChurnSchedule(self.network.sim, self.network)
        return self._churn

    # -- compilation ---------------------------------------------------

    def _compile(self) -> None:
        network = self.network
        # Register on the network so a checkpoint carries the compiled
        # scenario (and its narration log) across restore.
        network.scenario_runtime = self
        start = network.config.query_start
        if self.scenario.chaos is not None:
            self._compile_chaos(
                self.scenario.chaos, start, network.config.query_end
            )
        selector: Optional[KeySelector] = None
        needs_selector = any(
            isinstance(p, (FlashCrowd, PopularityDrift))
            for p in self.scenario.phases
        )
        if needs_selector:
            selector = network._default_key_selector()
            selector_rng = network.streams.get("scenario-keys")

        t = start
        for index, phase in enumerate(self.scenario.phases):
            end = t + phase.duration
            if isinstance(phase, ChurnBurst):
                self._compile_churn(phase, t, end)
            elif isinstance(phase, Partition):
                self._compile_partition(phase, index, t, end)
            elif isinstance(phase, CapacityFault):
                self._compile_capacity(phase, index, t, end)
            elif isinstance(phase, MessageLoss):
                self._compile_faults(
                    index, t, end, loss=phase.rate,
                    label=f"message loss at {phase.rate:.0%}",
                )
            elif isinstance(phase, DuplicateDelivery):
                self._compile_faults(
                    index, t, end, duplicate=phase.rate,
                    label=f"duplicate delivery at {phase.rate:.0%}",
                )
            elif isinstance(phase, DelayJitter):
                self._compile_faults(
                    index, t, end, jitter=phase.jitter,
                    label=f"delay jitter up to {phase.jitter}s",
                )
            elif isinstance(phase, NodeCrashRecover):
                self._compile_crash_recover(phase, index, t, end)
            elif isinstance(phase, FlashCrowd):
                selector = FlashCrowdKeys(
                    selector, self._hot_key(phase.hot_key_index),
                    start=t, end=end, hot_share=phase.share,
                    rng=selector_rng,
                )
            elif isinstance(phase, PopularityDrift):
                count = min(phase.hot_key_count, len(network.keys))
                selector = RotatingHotKeys(
                    selector, network.keys[:count],
                    start=t, end=end, period=phase.period,
                    hot_share=phase.share, rng=selector_rng,
                )
            t = end

        if selector is not None:
            network.attach_workload(key_selector=selector)

    def _hot_key(self, index: int) -> str:
        keys = self.network.keys
        return keys[index % len(keys)]

    def _compile_churn(self, phase: ChurnBurst, start: float, end: float) -> None:
        network = self.network
        schedule = self._churn_schedule()
        count = schedule.poisson(
            rate=phase.rate, start=start, end=end,
            rng=network.streams.get("scenario-churn"),
            join_fraction=phase.join_fraction,
            graceful_fraction=phase.graceful_fraction,
        )
        network.sim.schedule_at(
            start, self._log, f"churn burst begins ({count} events scheduled)"
        )
        network.sim.schedule_at(end, self._log, "churn burst ends")

    def _compile_partition(
        self, phase: Partition, index: int, start: float, end: float
    ) -> None:
        sim = self.network.sim
        sim.schedule_at(start, self._partition_cut, index, phase.groups)
        sim.schedule_at(end, self._partition_heal, index)

    def _partition_cut(self, index: int, groups: int) -> None:
        network = self.network
        members = sorted(network.live_node_ids(), key=str)
        islands = [members[i::groups] for i in range(groups)]
        rule_id = network.transport.partition(islands)
        self._active_partitions[index] = rule_id
        sizes = "/".join(str(len(island)) for island in islands)
        self._log(f"partition cut into {groups} islands ({sizes})")

    def _partition_heal(self, index: int) -> None:
        rule_id = self._active_partitions.pop(index, None)
        if rule_id is not None:
            self.network.transport.remove_drop_rule(rule_id)
        self._log("partition healed")

    def _compile_capacity(
        self, phase: CapacityFault, index: int, start: float, end: float
    ) -> None:
        sim = self.network.sim
        sim.schedule_at(
            start, self._capacity_degrade, index, phase.fraction, phase.reduced
        )
        sim.schedule_at(end, self._capacity_restore, index)

    def _capacity_degrade(
        self, index: int, fraction: float, reduced: float
    ) -> None:
        network = self.network
        schedule = CapacityFaultSchedule(
            network.sim,
            network.live_node_ids(),
            network.set_node_capacity,
            fraction=fraction,
            reduced=reduced,
            rng=network.streams.get("scenario-faults"),
        )
        self._capacity_schedules[index] = schedule
        schedule.degrade()
        self._log(
            f"capacity fault: {len(schedule.currently_degraded)} nodes "
            f"at {reduced:.0%}"
        )

    def _capacity_restore(self, index: int) -> None:
        schedule = self._capacity_schedules.pop(index, None)
        if schedule is not None:
            schedule.restore()
            self._log("capacity restored")

    def _compile_faults(
        self,
        token: Any,
        start: float,
        end: float,
        loss: float = 0.0,
        duplicate: float = 0.0,
        jitter: float = 0.0,
        label: str = "transport faults",
    ) -> None:
        """Install one LinkFaults rule for [start, end)."""
        sim = self.network.sim
        sim.schedule_at(
            start, self._faults_install, token, loss, duplicate, jitter, label
        )
        sim.schedule_at(end, self._faults_remove, token, label)

    def _faults_install(
        self, token: Any, loss: float, duplicate: float, jitter: float,
        label: str,
    ) -> None:
        network = self.network
        faults = LinkFaults(
            network.streams.get("link-faults"),
            loss=loss, duplicate=duplicate, jitter=jitter,
        )
        self._active_faults[token] = network.transport.add_link_faults(faults)
        self._log(f"{label} begins")

    def _faults_remove(self, token: Any, label: str) -> None:
        rule_id = self._active_faults.pop(token, None)
        if rule_id is not None:
            self.network.transport.remove_link_faults(rule_id)
        self._log(f"{label} ends")

    def _compile_chaos(self, chaos: ChaosSpec, start: float, end: float) -> None:
        self._compile_faults(
            "chaos", start, end,
            loss=chaos.loss, duplicate=chaos.duplicate, jitter=chaos.jitter,
            label=(
                f"chaos overlay (loss={chaos.loss:.0%}, "
                f"dup={chaos.duplicate:.0%}, jitter={chaos.jitter}s)"
            ),
        )

    def _compile_crash_recover(
        self, phase: NodeCrashRecover, index: int, start: float, end: float
    ) -> None:
        sim = self.network.sim
        sim.schedule_at(start, self._crash, index, phase.count)
        sim.schedule_at(end, self._recover, index)

    def _crash(self, index: int, count: int) -> None:
        network = self.network
        rng = network.streams.get("scenario-crashes")
        candidates = sorted(network.live_node_ids(), key=str)
        count = min(count, max(0, len(candidates) - 2))
        picked = sorted(
            rng.choice(len(candidates), size=count, replace=False).tolist()
        )
        victims = [candidates[i] for i in picked]
        for node_id in victims:
            network.crash_node(node_id)
        self._crash_victims[index] = victims
        self._log(f"crash: {victims} go dark")

    def _recover(self, index: int) -> None:
        recovered = []
        for node_id in self._crash_victims.pop(index, ()):
            # A keep-alive monitor may have completed the failure as
            # a departure in the meantime; only restart true corpses.
            if node_id in self.network._crashed:
                self.network.recover_node(node_id)
                recovered.append(node_id)
        self._log(f"recover: {recovered} restart")

    # -- introspection -------------------------------------------------

    def narration(self) -> str:
        return "\n".join(f"  t={t:8.1f}  {text}" for t, text in self.events)
