"""A composable scenario DSL for adversarial CUP runs.

A :class:`Scenario` is a named sequence of timed :class:`Phase`\\ s laid
over the query window of a :class:`~repro.core.protocol.CupNetwork`.
Each phase contributes one stressor for its duration:

* :class:`Quiet` — no stressor (warm-up, recovery, referee segments);
* :class:`ChurnBurst` — a correlated burst of Poisson membership churn
  (§2.9);
* :class:`Partition` — the overlay splits into islands that cannot
  exchange messages, then heals when the phase ends (uses the
  transport's drop-rule layer);
* :class:`FlashCrowd` — a single key suddenly captures a share of all
  queries (§2.8's flash-crowd motivation);
* :class:`PopularityDrift` — the hot spot rotates across keys,
  modelling Zipf-head drift;
* :class:`CapacityFault` — a random node subset degrades to reduced
  update capacity (§3.7), restored when the phase ends.

Phases are frozen dataclasses, so scenarios are hashable, picklable and
usable as part of an experiment cell's cache key.  Compilation
(:meth:`Scenario.compile_onto`) schedules every stressor on the
network's simulator and wires the workload's key selector; it never
draws from the workload's random streams, so a scenario run with the
scenario's stressors disabled is draw-for-draw the plain run.

Every phase also declares the invariant *hazards* it introduces (see
:mod:`repro.invariants`), so the scenario runner can attach a checker
that relaxes exactly the properties this composition legitimately
breaks — and nothing more.
"""

from __future__ import annotations

import dataclasses
from typing import (
    TYPE_CHECKING,
    Any,
    ClassVar,
    Dict,
    FrozenSet,
    List,
    Optional,
    Tuple,
)

from repro.core.protocol import CupConfig
from repro.workload.churn import ChurnSchedule
from repro.workload.faults import CapacityFaultSchedule
from repro.workload.keyspace import FlashCrowdKeys, KeySelector, RotatingHotKeys

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.protocol import CupNetwork


# ----------------------------------------------------------------------
# Phases
# ----------------------------------------------------------------------


@dataclasses.dataclass(frozen=True)
class Phase:
    """One timed segment of a scenario.  Subclasses add stressors."""

    duration: float

    #: Invariant hazards this phase introduces (subclasses override).
    #: A ClassVar, not a field: it is a property of the phase *type*
    #: and must stay out of cache keys and comparisons.
    hazards: ClassVar[FrozenSet[str]] = frozenset()

    def validate(self) -> None:
        if self.duration <= 0:
            raise ValueError(
                f"{type(self).__name__}: duration must be positive, "
                f"got {self.duration}"
            )


@dataclasses.dataclass(frozen=True)
class Quiet(Phase):
    """No stressor: plain traffic (warm-up / recovery segments)."""


@dataclasses.dataclass(frozen=True)
class ChurnBurst(Phase):
    """Correlated membership churn at ``rate`` events/second (§2.9)."""

    rate: float = 0.1
    join_fraction: float = 0.5
    graceful_fraction: float = 0.5
    hazards = frozenset({"churn"})

    def validate(self) -> None:
        super().validate()
        if self.rate <= 0:
            raise ValueError(f"ChurnBurst: rate must be positive, got {self.rate}")
        for name in ("join_fraction", "graceful_fraction"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(
                    f"ChurnBurst: {name} must be in [0, 1], got {value}"
                )


@dataclasses.dataclass(frozen=True)
class Partition(Phase):
    """The overlay splits into ``groups`` islands, healing at phase end.

    Islands are deterministic: live members sorted by id are dealt
    round-robin at cut time.  Messages crossing islands are lost in
    transit (hop cost still charged); nodes that join mid-partition
    belong to no island and communicate freely.
    """

    groups: int = 2
    hazards = frozenset({"partition"})

    def validate(self) -> None:
        super().validate()
        if self.groups < 2:
            raise ValueError(
                f"Partition: need at least 2 groups, got {self.groups}"
            )


@dataclasses.dataclass(frozen=True)
class FlashCrowd(Phase):
    """One key captures ``share`` of all queries for the phase (§2.8)."""

    hot_key_index: int = 0
    share: float = 0.8

    def validate(self) -> None:
        super().validate()
        if not 0.0 <= self.share <= 1.0:
            raise ValueError(
                f"FlashCrowd: share must be in [0, 1], got {self.share}"
            )
        if self.hot_key_index < 0:
            raise ValueError(
                f"FlashCrowd: hot_key_index must be >= 0, "
                f"got {self.hot_key_index}"
            )


@dataclasses.dataclass(frozen=True)
class PopularityDrift(Phase):
    """The popularity head rotates through ``hot_key_count`` keys."""

    period: float = 60.0
    share: float = 0.6
    hot_key_count: int = 4

    def validate(self) -> None:
        super().validate()
        if self.period <= 0:
            raise ValueError(
                f"PopularityDrift: period must be positive, got {self.period}"
            )
        if not 0.0 <= self.share <= 1.0:
            raise ValueError(
                f"PopularityDrift: share must be in [0, 1], got {self.share}"
            )
        if self.hot_key_count < 1:
            raise ValueError(
                f"PopularityDrift: hot_key_count must be >= 1, "
                f"got {self.hot_key_count}"
            )


@dataclasses.dataclass(frozen=True)
class CapacityFault(Phase):
    """A random ``fraction`` of nodes degrades to ``reduced`` capacity
    for the phase, then recovers (§3.7's Up-And-Down episode shape)."""

    fraction: float = 0.2
    reduced: float = 0.25
    hazards = frozenset({"capacity"})

    def validate(self) -> None:
        super().validate()
        for name in ("fraction", "reduced"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(
                    f"CapacityFault: {name} must be in [0, 1], got {value}"
                )


# ----------------------------------------------------------------------
# Scenario
# ----------------------------------------------------------------------


@dataclasses.dataclass(frozen=True)
class Scenario:
    """A named, hashable composition of phases plus config overrides.

    ``overrides`` is a tuple of ``(CupConfig field, value)`` pairs so
    the scenario stays hashable; :meth:`build_config` applies them and
    pins ``query_duration`` to the total phase time — phases tile the
    query window exactly.
    """

    name: str
    description: str
    phases: Tuple[Phase, ...]
    overrides: Tuple[Tuple[str, Any], ...] = ()

    def __post_init__(self) -> None:
        if not self.phases:
            raise ValueError(f"scenario {self.name!r} has no phases")
        for phase in self.phases:
            phase.validate()
        names = [field for field, _ in self.overrides]
        if len(set(names)) != len(names):
            raise ValueError(
                f"scenario {self.name!r} has duplicate overrides"
            )

    # -- derived properties --------------------------------------------

    @property
    def total_duration(self) -> float:
        return sum(phase.duration for phase in self.phases)

    def hazards(self) -> FrozenSet[str]:
        """Union of every phase's invariant hazards."""
        result: FrozenSet[str] = frozenset()
        for phase in self.phases:
            result |= phase.hazards
        return result

    def key(self) -> tuple:
        """Stable identity tuple (used in experiment-cell cache keys)."""
        return (
            self.name,
            tuple(
                (type(phase).__name__,) + dataclasses.astuple(phase)
                for phase in self.phases
            ),
            self.overrides,
        )

    # -- config --------------------------------------------------------

    def build_config(self, base: Optional[CupConfig] = None, **extra) -> CupConfig:
        """The scenario's concrete :class:`CupConfig`.

        Starts from ``base`` (or the module default), applies the
        scenario's overrides, then ``extra`` (e.g. a seed), and finally
        pins the query window to the phase schedule.
        """
        config = base if base is not None else default_base_config()
        if self.overrides:
            config = config.variant(**dict(self.overrides))
        if extra:
            config = config.variant(**extra)
        return config.variant(query_duration=self.total_duration)

    # -- compilation ---------------------------------------------------

    def compile_onto(self, network: "CupNetwork") -> "ScenarioRuntime":
        """Schedule every phase's stressors onto a wired network.

        Must be called before :meth:`CupNetwork.run` (it attaches the
        workload when any phase shapes the key distribution).  Returns
        the runtime handle holding the scenario event log.
        """
        runtime = ScenarioRuntime(self, network)
        runtime._compile()
        return runtime


def default_base_config() -> CupConfig:
    """The compact deployment the built-in scenarios run on.

    Small enough that a full scenario (with invariants on) finishes in
    well under a second, big enough that propagation trees have real
    depth.
    """
    return CupConfig(
        num_nodes=32,
        total_keys=8,
        query_rate=4.0,
        entry_lifetime=60.0,
        query_start=120.0,
        drain=90.0,
        gc_interval=60.0,
    )


# ----------------------------------------------------------------------
# Runtime (compiled scenario)
# ----------------------------------------------------------------------


class ScenarioRuntime:
    """A scenario bound to one network: scheduled stressors + event log."""

    def __init__(self, scenario: Scenario, network: "CupNetwork"):
        self.scenario = scenario
        self.network = network
        #: (time, description) narration of every stressor transition.
        self.events: List[Tuple[float, str]] = []
        self._churn: Optional[ChurnSchedule] = None
        self._active_partitions: Dict[int, int] = {}

    # -- helpers -------------------------------------------------------

    def _log(self, text: str) -> None:
        self.events.append((self.network.sim.now, text))

    def _churn_schedule(self) -> ChurnSchedule:
        if self._churn is None:
            self._churn = ChurnSchedule(self.network.sim, self.network)
        return self._churn

    # -- compilation ---------------------------------------------------

    def _compile(self) -> None:
        network = self.network
        start = network.config.query_start
        selector: Optional[KeySelector] = None
        needs_selector = any(
            isinstance(p, (FlashCrowd, PopularityDrift))
            for p in self.scenario.phases
        )
        if needs_selector:
            selector = network._default_key_selector()
            selector_rng = network.streams.get("scenario-keys")

        t = start
        for index, phase in enumerate(self.scenario.phases):
            end = t + phase.duration
            if isinstance(phase, ChurnBurst):
                self._compile_churn(phase, t, end)
            elif isinstance(phase, Partition):
                self._compile_partition(phase, index, t, end)
            elif isinstance(phase, CapacityFault):
                self._compile_capacity(phase, t, end)
            elif isinstance(phase, FlashCrowd):
                selector = FlashCrowdKeys(
                    selector, self._hot_key(phase.hot_key_index),
                    start=t, end=end, hot_share=phase.share,
                    rng=selector_rng,
                )
            elif isinstance(phase, PopularityDrift):
                count = min(phase.hot_key_count, len(network.keys))
                selector = RotatingHotKeys(
                    selector, network.keys[:count],
                    start=t, end=end, period=phase.period,
                    hot_share=phase.share, rng=selector_rng,
                )
            t = end

        if selector is not None:
            network.attach_workload(key_selector=selector)

    def _hot_key(self, index: int) -> str:
        keys = self.network.keys
        return keys[index % len(keys)]

    def _compile_churn(self, phase: ChurnBurst, start: float, end: float) -> None:
        network = self.network
        schedule = self._churn_schedule()
        count = schedule.poisson(
            rate=phase.rate, start=start, end=end,
            rng=network.streams.get("scenario-churn"),
            join_fraction=phase.join_fraction,
            graceful_fraction=phase.graceful_fraction,
        )
        network.sim.schedule_at(
            start, self._log, f"churn burst begins ({count} events scheduled)"
        )
        network.sim.schedule_at(end, self._log, "churn burst ends")

    def _compile_partition(
        self, phase: Partition, index: int, start: float, end: float
    ) -> None:
        network = self.network

        def cut() -> None:
            members = sorted(network.live_node_ids(), key=str)
            islands = [members[i::phase.groups] for i in range(phase.groups)]
            rule_id = network.transport.partition(islands)
            self._active_partitions[index] = rule_id
            sizes = "/".join(str(len(island)) for island in islands)
            self._log(f"partition cut into {phase.groups} islands ({sizes})")

        def heal() -> None:
            rule_id = self._active_partitions.pop(index, None)
            if rule_id is not None:
                network.transport.remove_drop_rule(rule_id)
            self._log("partition healed")

        network.sim.schedule_at(start, cut)
        network.sim.schedule_at(end, heal)

    def _compile_capacity(
        self, phase: CapacityFault, start: float, end: float
    ) -> None:
        network = self.network
        state: Dict[str, CapacityFaultSchedule] = {}

        def degrade() -> None:
            schedule = CapacityFaultSchedule(
                network.sim,
                network.live_node_ids(),
                network.set_node_capacity,
                fraction=phase.fraction,
                reduced=phase.reduced,
                rng=network.streams.get("scenario-faults"),
            )
            state["schedule"] = schedule
            schedule.degrade()
            self._log(
                f"capacity fault: {len(schedule.currently_degraded)} nodes "
                f"at {phase.reduced:.0%}"
            )

        def restore() -> None:
            schedule = state.pop("schedule", None)
            if schedule is not None:
                schedule.restore()
                self._log("capacity restored")

        network.sim.schedule_at(start, degrade)
        network.sim.schedule_at(end, restore)

    # -- introspection -------------------------------------------------

    def narration(self) -> str:
        return "\n".join(f"  t={t:8.1f}  {text}" for t, text in self.events)
