"""The built-in scenario library.

Each scenario is a small, fast composition (sub-second with invariants
enabled) that stresses one adversity the paper discusses — plus one
that stacks them all.  They run from the CLI (``repro scenarios run``),
from tests (each has an invariant-checked test), and as experiment
cells (:class:`repro.experiments.executor.Cell` with ``scenario=``).
"""

from __future__ import annotations

from typing import Dict

from repro.scenarios.dsl import (
    CapacityFault,
    ChurnBurst,
    DelayJitter,
    DuplicateDelivery,
    FlashCrowd,
    MessageLoss,
    NodeCrashRecover,
    Partition,
    PopularityDrift,
    Quiet,
    Scenario,
)

SCENARIOS: Dict[str, Scenario] = {}


def _register(scenario: Scenario) -> Scenario:
    if scenario.name in SCENARIOS:
        raise ValueError(f"duplicate scenario name: {scenario.name!r}")
    SCENARIOS[scenario.name] = scenario
    return scenario


STEADY_STATE = _register(Scenario(
    name="steady-state",
    description="Benign baseline: plain traffic, every invariant strict.",
    phases=(Quiet(300.0),),
))

CHURN_STORM = _register(Scenario(
    name="churn-storm",
    description="Two correlated churn bursts (§2.9), the second mostly "
                "ungraceful, with recovery windows between them.",
    phases=(
        Quiet(60.0),
        ChurnBurst(90.0, rate=0.2),
        Quiet(60.0),
        ChurnBurst(90.0, rate=0.3, graceful_fraction=0.2),
        Quiet(60.0),
    ),
))

FLASH_CROWD = _register(Scenario(
    name="flash-crowd",
    description="One key captures 85% of queries for two minutes (§2.8); "
                "appends promoted via the flash-crowd priority profile.",
    phases=(
        Quiet(60.0),
        FlashCrowd(120.0, hot_key_index=3, share=0.85),
        Quiet(90.0),
    ),
    overrides=(
        ("priority_profile", "flash-crowd"),
        ("replicas_per_key", 2),
    ),
))

PARTITION_HEAL = _register(Scenario(
    name="partition-heal",
    description="The overlay splits into two islands for two minutes, "
                "then heals; queries across the cut are lost and must "
                "recover via the PFU timeout.",
    phases=(
        Quiet(60.0),
        Partition(120.0, groups=2),
        Quiet(120.0),
    ),
))

CAPACITY_SAG = _register(Scenario(
    name="capacity-sag",
    description="Up-and-down capacity faults (§3.7): a quarter of the "
                "nodes sag to 25% capacity, recover, then a second set "
                "drops to zero.",
    phases=(
        Quiet(60.0),
        CapacityFault(120.0, fraction=0.25, reduced=0.25),
        Quiet(60.0),
        CapacityFault(90.0, fraction=0.25, reduced=0.0),
        Quiet(60.0),
    ),
))

ZIPF_DRIFT = _register(Scenario(
    name="zipf-drift",
    description="Zipf workload whose popularity head rotates across four "
                "keys every minute — yesterday's hot content cools.",
    phases=(
        PopularityDrift(240.0, period=60.0, share=0.6, hot_key_count=4),
        Quiet(60.0),
    ),
    overrides=(
        ("key_distribution", "zipf"),
        ("total_keys", 16),
    ),
))

LOSSY_MESH = _register(Scenario(
    name="lossy-mesh",
    description="One in five overlay sends vanishes for two minutes; "
                "gap detection + NACK recovery must keep every "
                "subscribed cache converged (or explicitly degraded).",
    phases=(
        Quiet(60.0),
        MessageLoss(120.0, rate=0.2),
        Quiet(90.0),
    ),
    overrides=(
        ("reliable_transport", False),
    ),
))

CHAOS_MONKEY = _register(Scenario(
    name="chaos-monkey",
    description="The unreliable-network gauntlet: loss, duplicate "
                "delivery, delay jitter, then a crash-recover window — "
                "every fault the recovery layer exists for, back to "
                "back.",
    phases=(
        Quiet(60.0),
        MessageLoss(90.0, rate=0.15),
        DuplicateDelivery(60.0, rate=0.2),
        DelayJitter(60.0, jitter=0.25),
        NodeCrashRecover(60.0, count=2),
        Quiet(90.0),
    ),
    overrides=(
        ("reliable_transport", False),
    ),
))

PERFECT_STORM = _register(Scenario(
    name="perfect-storm",
    description="Every stressor back to back: capacity sag, flash crowd, "
                "partition, churn burst, popularity drift — with barely "
                "any recovery time between them.",
    phases=(
        Quiet(60.0),
        CapacityFault(90.0, fraction=0.2, reduced=0.25),
        FlashCrowd(60.0, hot_key_index=1, share=0.7),
        Partition(90.0, groups=2),
        ChurnBurst(90.0, rate=0.15),
        PopularityDrift(90.0, period=30.0, share=0.5, hot_key_count=3),
        Quiet(90.0),
    ),
))
