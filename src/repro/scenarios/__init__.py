"""Composable adversarial scenarios for CUP simulations.

Assemble timed phases (churn bursts, partitions, flash crowds,
popularity drift, capacity faults, transport faults) into a
:class:`Scenario`, compile it onto a
:class:`~repro.core.protocol.CupNetwork`, and run it with runtime
protocol invariants attached::

    from repro.scenarios import SCENARIOS, run_scenario

    result = run_scenario(SCENARIOS["perfect-storm"], seed=7)
    assert result.ok
    print(result.report())

Any scenario can be rerun over an unreliable transport with
:func:`with_chaos`, which overlays seeded loss/duplication/jitter on the
query window and arms every node's recovery state machine.

See ``docs/scenarios.md`` for the DSL guide and ``docs/robustness.md``
for the fault model and recovery protocol.
"""

from repro.scenarios.builtin import SCENARIOS
from repro.scenarios.dsl import (
    CapacityFault,
    ChaosSpec,
    ChurnBurst,
    DelayJitter,
    DuplicateDelivery,
    FlashCrowd,
    MessageLoss,
    NodeCrashRecover,
    Partition,
    Phase,
    PopularityDrift,
    Quiet,
    Scenario,
    ScenarioRuntime,
    default_base_config,
    with_chaos,
)
from repro.scenarios.runner import ScenarioResult, run_scenario

__all__ = [
    "CapacityFault",
    "ChaosSpec",
    "ChurnBurst",
    "DelayJitter",
    "DuplicateDelivery",
    "FlashCrowd",
    "MessageLoss",
    "NodeCrashRecover",
    "Partition",
    "Phase",
    "PopularityDrift",
    "Quiet",
    "SCENARIOS",
    "Scenario",
    "ScenarioResult",
    "ScenarioRuntime",
    "default_base_config",
    "run_scenario",
    "with_chaos",
]
