"""Composable adversarial scenarios for CUP simulations.

Assemble timed phases (churn bursts, partitions, flash crowds,
popularity drift, capacity faults) into a :class:`Scenario`, compile it
onto a :class:`~repro.core.protocol.CupNetwork`, and run it with
runtime protocol invariants attached::

    from repro.scenarios import SCENARIOS, run_scenario

    result = run_scenario(SCENARIOS["perfect-storm"], seed=7)
    assert result.ok
    print(result.report())

See ``docs/scenarios.md`` for the DSL guide.
"""

from repro.scenarios.builtin import SCENARIOS
from repro.scenarios.dsl import (
    CapacityFault,
    ChurnBurst,
    FlashCrowd,
    Partition,
    Phase,
    PopularityDrift,
    Quiet,
    Scenario,
    ScenarioRuntime,
    default_base_config,
)
from repro.scenarios.runner import ScenarioResult, run_scenario

__all__ = [
    "CapacityFault",
    "ChurnBurst",
    "FlashCrowd",
    "Partition",
    "Phase",
    "PopularityDrift",
    "Quiet",
    "SCENARIOS",
    "Scenario",
    "ScenarioResult",
    "ScenarioRuntime",
    "default_base_config",
    "run_scenario",
]
