"""Synchronous client for a live CUP node.

The CLI's ``repro node put|get|info|audit|stop`` subcommands talk to a
running daemon through this class.  It is plain blocking sockets on
purpose — a client makes one request at a time, so an event loop would
be ceremony — but it speaks exactly the same frames as the daemon's
peers: :func:`~repro.net.wire.encode_frame` out,
:class:`~repro.net.wire.FrameDecoder` in.
"""

from __future__ import annotations

import socket
from collections import deque
from typing import Deque, Iterable, Optional, Tuple

from repro.net.wire import FrameDecoder, WireError, encode_frame

_READ_CHUNK = 1 << 16


def parse_address(address: str, default_port: int = 9400) -> Tuple[str, int]:
    """``"host:port"`` / ``"host"`` / ``":port"`` -> ``(host, port)``."""
    host, sep, port = address.rpartition(":")
    if not sep:
        return address or "127.0.0.1", default_port
    try:
        return host or "127.0.0.1", int(port)
    except ValueError:
        raise ValueError(f"invalid node address {address!r}") from None


class NodeClient:
    """One connection to one daemon; usable as a context manager."""

    def __init__(self, address: str, timeout: float = 10.0,
                 codec: str = "json"):
        host, port = parse_address(address)
        self.address = f"{host}:{port}"
        self._codec = codec
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._decoder = FrameDecoder()
        # Responses decoded past the one being awaited (a recv can land
        # mid-pipeline and carry several frames); served FIFO by later
        # requests instead of being dropped on the floor.
        self._pending: Deque[dict] = deque()

    def __enter__(self) -> "NodeClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def close(self) -> None:
        try:
            self._sock.close()
        except OSError:  # pragma: no cover - close races are benign
            pass

    def request(self, frame: dict) -> dict:
        """Send one request frame; block for its response frame.

        Responses are matched to requests by order (the daemon serves
        one client frame at a time per connection), so a frame that
        arrived in the same ``recv`` as an earlier response waits in
        ``_pending`` for the request it answers.
        """
        self._sock.sendall(encode_frame(frame, self._codec))
        while not self._pending:
            data = self._sock.recv(_READ_CHUNK)
            if not data:
                raise WireError(
                    f"node {self.address} closed the connection "
                    f"before responding"
                )
            self._pending.extend(self._decoder.feed(data))
        return self._pending.popleft()

    # Convenience wrappers ------------------------------------------------

    def put(self, key: str, replica_id: str, address: str = "",
            lifetime: float = 300.0, event: str = "birth") -> dict:
        return self.request({
            "t": "put", "key": key, "replica_id": replica_id,
            "address": address, "lifetime": lifetime, "event": event,
        })

    def get(self, key: str, timeout: Optional[float] = None) -> dict:
        frame = {"t": "get", "key": key}
        if timeout is not None:
            frame["timeout"] = timeout
        return self.request(frame)

    def info(self) -> dict:
        return self.request({"t": "info"})

    def audit(self) -> dict:
        return self.request({"t": "audit"})

    def hazard(self, hazards: Iterable[str], action: str = "open",
               duration: Optional[float] = None) -> dict:
        """Open/close invariant hazard windows on the daemon's checker."""
        frame = {"t": "hazard", "action": action,
                 "hazards": list(hazards)}
        if duration is not None:
            frame["duration"] = duration
        return self.request(frame)

    def stop(self) -> dict:
        return self.request({"t": "stop"})
