"""Synchronous client for a live CUP node.

The CLI's ``repro node put|get|info|audit|stop`` subcommands talk to a
running daemon through this class.  It is plain blocking sockets on
purpose — a client makes one request at a time, so an event loop would
be ceremony — but it speaks exactly the same frames as the daemon's
peers: :func:`~repro.net.wire.encode_frame` out,
:class:`~repro.net.wire.FrameDecoder` in.
"""

from __future__ import annotations

import socket
from typing import Optional, Tuple

from repro.net.wire import FrameDecoder, WireError, encode_frame

_READ_CHUNK = 1 << 16


def parse_address(address: str, default_port: int = 9400) -> Tuple[str, int]:
    """``"host:port"`` / ``"host"`` / ``":port"`` -> ``(host, port)``."""
    host, sep, port = address.rpartition(":")
    if not sep:
        return address or "127.0.0.1", default_port
    try:
        return host or "127.0.0.1", int(port)
    except ValueError:
        raise ValueError(f"invalid node address {address!r}") from None


class NodeClient:
    """One connection to one daemon; usable as a context manager."""

    def __init__(self, address: str, timeout: float = 10.0,
                 codec: str = "json"):
        host, port = parse_address(address)
        self.address = f"{host}:{port}"
        self._codec = codec
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._decoder = FrameDecoder()

    def __enter__(self) -> "NodeClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def close(self) -> None:
        try:
            self._sock.close()
        except OSError:  # pragma: no cover - close races are benign
            pass

    def request(self, frame: dict) -> dict:
        """Send one request frame; block for the single response frame."""
        self._sock.sendall(encode_frame(frame, self._codec))
        while True:
            data = self._sock.recv(_READ_CHUNK)
            if not data:
                raise WireError(
                    f"node {self.address} closed the connection "
                    f"before responding"
                )
            frames = self._decoder.feed(data)
            if frames:
                return frames[0]

    # Convenience wrappers ------------------------------------------------

    def put(self, key: str, replica_id: str, address: str = "",
            lifetime: float = 300.0, event: str = "birth") -> dict:
        return self.request({
            "t": "put", "key": key, "replica_id": replica_id,
            "address": address, "lifetime": lifetime, "event": event,
        })

    def get(self, key: str, timeout: Optional[float] = None) -> dict:
        frame = {"t": "get", "key": key}
        if timeout is not None:
            frame["timeout"] = timeout
        return self.request(frame)

    def info(self) -> dict:
        return self.request({"t": "info"})

    def audit(self) -> dict:
        return self.request({"t": "audit"})

    def stop(self) -> dict:
        return self.request({"t": "stop"})
