"""Live networking for CUP: wire codec, clock/transport seam, daemon.

The simulator and the live stack share one protocol core; this package
holds everything that only exists in the live world — framing
(:mod:`~repro.net.wire`), the asyncio substrate
(:mod:`~repro.net.clock`, :mod:`~repro.net.transport`), the node daemon
(:mod:`~repro.net.daemon`) and its client (:mod:`~repro.net.client`).
"""

from repro.net.client import NodeClient, parse_address
from repro.net.clock import LiveClock
from repro.net.daemon import LiveNode, LiveNodeConfig, run_node, serve
from repro.net.transport import LiveTransport
from repro.net.wire import (
    FrameDecoder,
    WireError,
    available_codecs,
    encode_frame,
    message_from_wire,
    message_to_wire,
)

__all__ = [
    "FrameDecoder",
    "LiveClock",
    "LiveNode",
    "LiveNodeConfig",
    "LiveTransport",
    "NodeClient",
    "WireError",
    "available_codecs",
    "encode_frame",
    "message_from_wire",
    "message_to_wire",
    "parse_address",
    "run_node",
    "serve",
]
