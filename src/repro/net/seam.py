"""The substrate seam ``core/`` runs over, stated as typing Protocols.

The CUP protocol layer (:mod:`repro.core`) never imports an event loop
or a socket: every node touches its substrate exclusively through two
duck-typed dependencies —

* a **clock** with a ``now`` attribute and a ``schedule(delay, fn,
  *args)`` method returning a cancellable handle (the discrete-event
  :class:`~repro.sim.engine.Simulator`, or
  :class:`~repro.net.clock.LiveClock` over asyncio), and
* a **transport** with the send/registry surface below (the simulator's
  :class:`~repro.sim.network.Transport`, or
  :class:`~repro.net.transport.LiveTransport` over TCP connections).

These Protocols make that seam explicit and checkable.  They are
intentionally defined *here* rather than by moving ``Message``/
``Transport`` out of :mod:`repro.sim.network`: the simulator types are
pickled into checkpoints and pinned by golden-run byte identity, so the
live stack conforms to the seam instead of the seam relocating the
simulator.  ``tests/test_live_node.py`` asserts both implementations
satisfy :func:`missing_transport_methods` / :func:`missing_clock_api`.
"""

from __future__ import annotations

from typing import Any, Iterable, List, Protocol, Tuple

from repro.sim.network import Message, NodeId

__all__ = [
    "ClockSeam",
    "RouterSeam",
    "TransportSeam",
    "missing_clock_api",
    "missing_router_methods",
    "missing_transport_methods",
]


class ClockSeam(Protocol):
    """What node logic, timers and recovery need of a clock."""

    @property
    def now(self) -> float:
        """Current time in seconds (simulated or wall)."""
        ...  # pragma: no cover - protocol definition

    def schedule(self, delay: float, fn, *args) -> Any:
        """Run ``fn(*args)`` after ``delay``; returns a handle with
        ``cancel()``."""
        ...  # pragma: no cover - protocol definition


class TransportSeam(Protocol):
    """What node logic needs of a transport.

    Counter attributes (``sent``, ``sent_direct``, ``delivered``,
    ``dropped``, ``blocked``, ``lost``, ``duplicated``, ``reordered``)
    ride along for the invariant checker's conservation audit; they are
    data members, so they are listed in :data:`TRANSPORT_COUNTERS`
    rather than in the Protocol body (``runtime_checkable`` protocols
    may not carry non-method members).
    """

    def register(self, node_id: NodeId, handler) -> None:
        ...  # pragma: no cover - protocol definition

    def unregister(self, node_id: NodeId) -> None:
        ...  # pragma: no cover - protocol definition

    def is_registered(self, node_id: NodeId) -> bool:
        ...  # pragma: no cover - protocol definition

    def send(self, src: NodeId, dst: NodeId, message: Message) -> None:
        ...  # pragma: no cover - protocol definition

    def send_fanout(
        self, src: NodeId, dsts: Tuple[NodeId, ...], message: Message
    ) -> None:
        ...  # pragma: no cover - protocol definition

    def send_direct(
        self, dst: NodeId, message: Message, delay: float = 0.0,
        src: NodeId = None,
    ) -> None:
        ...  # pragma: no cover - protocol definition

    def add_send_observer(self, observer) -> None:
        ...  # pragma: no cover - protocol definition

    def attach_metrics(self, collector) -> None:
        ...  # pragma: no cover - protocol definition


class RouterSeam(Protocol):
    """What :class:`~repro.net.transport.LiveTransport` needs of the
    daemon it routes for.

    The live transport turns a protocol send into a wire frame and asks
    its router — the :class:`~repro.net.daemon.LiveNode` — where (and
    whether) it can go.  ``send_wire`` returns False when the frame was
    dropped (no link, outbox full); the transport counts the drop and
    the protocol's own retry machinery absorbs the loss.
    """

    def is_peer(self, node_id: NodeId) -> bool:
        ...  # pragma: no cover - protocol definition

    def call_soon(self, fn, *args) -> None:
        ...  # pragma: no cover - protocol definition

    def send_wire(
        self, src: NodeId, dst: NodeId, message: Message, direct: bool
    ) -> bool:
        ...  # pragma: no cover - protocol definition


#: Method surface of :class:`RouterSeam`, for conformance checks.
ROUTER_METHODS: Tuple[str, ...] = ("is_peer", "call_soon", "send_wire")


#: Method surface of :class:`TransportSeam`, for conformance checks.
TRANSPORT_METHODS: Tuple[str, ...] = (
    "register", "unregister", "is_registered",
    "send", "send_fanout", "send_direct",
    "add_send_observer", "attach_metrics",
)

#: Counter attributes the invariant checker's conservation audit reads.
TRANSPORT_COUNTERS: Tuple[str, ...] = (
    "sent", "sent_direct", "delivered", "dropped", "blocked",
    "lost", "duplicated", "reordered",
)


def missing_transport_methods(transport: Any) -> List[str]:
    """Names of seam methods/counters ``transport`` fails to provide."""
    missing = [
        name for name in TRANSPORT_METHODS
        if not callable(getattr(transport, name, None))
    ]
    missing.extend(
        name for name in TRANSPORT_COUNTERS
        if not hasattr(transport, name)
    )
    return missing


def missing_router_methods(router: Any) -> List[str]:
    """Names of seam methods ``router`` fails to provide."""
    return [
        name for name in ROUTER_METHODS
        if not callable(getattr(router, name, None))
    ]


def missing_clock_api(clock: Any) -> List[str]:
    """Names of seam members ``clock`` fails to provide."""
    missing = []
    if not hasattr(clock, "now"):
        missing.append("now")
    if not callable(getattr(clock, "schedule", None)):
        missing.append("schedule")
    return missing


def conforming(objects: Iterable[Any]) -> bool:
    """Whether every object satisfies the transport seam (test helper)."""
    return all(not missing_transport_methods(obj) for obj in objects)
