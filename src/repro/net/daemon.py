"""The live CUP node: an asyncio daemon over the shared protocol core.

One :class:`LiveNode` process hosts exactly one
:class:`~repro.core.node.CupNode` — constructed with the *same* classes
the simulator uses (cache, policies, recovery, keep-alive, channels) on
top of :class:`~repro.net.clock.LiveClock` and
:class:`~repro.net.transport.LiveTransport`.  Nothing in ``core/`` knows
whether it is being simulated.

Cluster mechanics
-----------------

* **Identity.**  A node's id *is* its dialable listen address
  (``"host:port"``), so the membership set doubles as the address book
  and :class:`~repro.overlay.chord.ChordOverlay` — which accepts any
  hashable id — hashes it onto the ring.  Every member derives the same
  ring from the same membership, so routing agrees cluster-wide without
  a coordination protocol.

* **Join.**  A newcomer dials any seed member and sends ``hello``; the
  seed replies ``welcome`` (the full member list) and broadcasts
  ``joined`` to everyone else.  The newcomer then dials every member it
  learned of.  Established members never dial newcomers eagerly — but
  any send toward a member without a connection triggers a background
  heal dial, so the mesh self-repairs (the frame that triggered the
  heal is dropped and counted, exactly like a simulator send to a
  departed node; CUP's PFU timeout and recovery NACKs take it from
  there).

* **Leave / failure.**  Graceful shutdown broadcasts ``leaving``.
  Silent death is caught by the same
  :class:`~repro.core.keepalive.KeepAliveMonitor` the simulator uses:
  heartbeats ride the live transport and any received traffic proves
  life.  A first strike (keep-alive misses or consecutive dial
  failures) only *suspects* the peer — it is probed immediately and
  given one keep-alive window of grace, because a flapping peer that
  answers the probe should not lose its interest bits.  Only a second
  strike (grace expiry, more misses, or enough dial failures) declares
  it dead and removes the member — the overlay absorbs its arc and
  interest bits are patched (§2.9).

* **Dialing.**  Dial failures back off exponentially per peer (capped,
  jittered) instead of being retried by every frame that wants the
  link; frames queued toward a peer are bounded, with overflow counted
  rather than growing without limit against a dead destination.

* **Durability.**  With ``--state-dir`` configured, the daemon
  write-behind-snapshots its durable slice (cache entries + interest,
  authority index, member list, recovery watermarks) through
  :class:`~repro.persistence.nodestore.NodeStore` on a cadence and on
  graceful stop.  At boot the snapshot is restored, so a restarted
  daemon *rejoins warm*: it re-announces itself (``hello`` with a
  ``rejoin`` flag), re-grafts its interests via background pulls, and
  serves local hits from the restored cache immediately while the
  pulls reconcile any staleness accrued during the outage.

* **Clients.**  A connection whose first frame is not ``hello`` is a
  client session: ``put`` routes a replica birth/refresh to the key's
  authority, ``get`` posts a local query and awaits the CUP response
  machinery, ``audit`` runs the attached invariant checker's quiescence
  sweep, ``info`` and ``stop`` do what they say.

The invariant checker attaches to the live stack through
:class:`LocalNetworkView` — the one-node "network" this process can
see — with ``churn``/``crash`` hazards declared (peers come and go),
so every structural, monotonicity and cost-balance check runs against
real sockets.
"""

from __future__ import annotations

import asyncio
import contextlib
import dataclasses
import random
import sys
from typing import Dict, Optional, Set, Tuple

from repro.core.keepalive import KeepAliveMonitor
from repro.core.messages import ReplicaEvent, ReplicaMessage
from repro.core.node import CupNode
from repro.core.policies import make_policy
from repro.core.recovery import RecoveryConfig
from repro.metrics.collector import MetricsCollector
from repro.net.clock import LiveClock
from repro.net.transport import LiveTransport
from repro.net.wire import (
    FrameDecoder,
    WireError,
    encode_frame,
    entry_to_wire,
    message_from_wire,
    message_to_wire,
    resolve_codec,
)
from repro.overlay.chord import ChordOverlay
from repro.persistence.checkpoint import CheckpointError
from repro.persistence.nodestore import NodeStore, sanitize_restored
from repro.sim.process import PeriodicProcess

_READ_CHUNK = 1 << 16


@dataclasses.dataclass(frozen=True)
class LiveNodeConfig:
    """Everything a live node needs to serve.

    ``node_id`` defaults to ``"host:port"`` once the listener is bound
    (so ``port=0`` — pick a free port — works); when overridden it must
    still be a dialable ``host:port`` string, because peers use member
    ids as addresses.
    """

    host: str = "127.0.0.1"
    port: int = 9400
    node_id: Optional[str] = None
    #: Seed member addresses to join through (empty = found a cluster).
    peers: Tuple[str, ...] = ()
    mode: str = "cup"  # "cup" | "standard"
    policy: str = "second-chance"
    pfu_timeout: float = 3.0
    keepalive_period: float = 2.0
    keepalive_misses: int = 3
    #: Garbage-collect expired cache state this often (0 disables).
    gc_interval: float = 60.0
    overlay_bits: int = 32
    codec: str = "json"
    invariants: bool = True
    #: Run the unreliable-transport recovery layer.  TCP is reliable
    #: per-connection, but frames sent while a link is still dialing are
    #: dropped — gap detection + NACK recovers them.
    recovery: bool = True
    join_timeout: float = 10.0
    quiet: bool = False
    #: Directory for the durable state snapshot (None = stateless: a
    #: restart rejoins cold).
    state_dir: Optional[str] = None
    #: Write-behind snapshot cadence when ``state_dir`` is set.
    snapshot_interval: float = 5.0
    #: Per-peer dial backoff: first retry after ``base`` seconds,
    #: doubling up to ``max``, each delay stretched by up to ``jitter``
    #: (fraction) so a restarted cluster does not redial in lockstep.
    dial_backoff_base: float = 0.25
    dial_backoff_max: float = 5.0
    dial_backoff_jitter: float = 0.25
    #: Consecutive dial failures before a member is suspected / declared
    #: dead.  Keep-alive misses escalate through the same suspicion
    #: state, so whichever signal fires first drives the transition.
    suspect_after: int = 2
    dead_after: int = 6
    #: Frames queued toward one peer before further sends are dropped
    #: and counted (``outbox_overflows``) instead of growing unbounded.
    outbox_limit: int = 1024

    def __post_init__(self):
        if self.mode not in ("cup", "standard"):
            raise ValueError(f"mode must be 'cup' or 'standard', got "
                             f"{self.mode!r}")
        if self.snapshot_interval <= 0:
            raise ValueError("snapshot_interval must be positive")
        if self.dial_backoff_base <= 0:
            raise ValueError("dial_backoff_base must be positive")
        if self.dial_backoff_max < self.dial_backoff_base:
            raise ValueError(
                "dial_backoff_max must be >= dial_backoff_base")
        if self.dial_backoff_jitter < 0:
            raise ValueError("dial_backoff_jitter must be >= 0")
        if self.suspect_after < 1:
            raise ValueError("suspect_after must be >= 1")
        if self.dead_after < self.suspect_after:
            raise ValueError("dead_after must be >= suspect_after")
        if self.outbox_limit < 1:
            raise ValueError("outbox_limit must be >= 1")
        resolve_codec(self.codec)  # fail fast on unavailable codecs


class LocalNetworkView:
    """The 'network' surface the invariant checker reads, one node wide.

    :class:`~repro.invariants.checker.InvariantChecker` consumes
    ``network.sim.now``, ``network.nodes``, ``network.overlay``,
    ``network.metrics`` and ``network.transport``; this adapter lends a
    daemon those attributes so the checker runs unmodified against live
    sockets.
    """

    def __init__(self, daemon: "LiveNode"):
        self._daemon = daemon

    @property
    def sim(self):
        return self._daemon.clock

    @property
    def nodes(self):
        node = self._daemon.node
        return {} if node is None else {self._daemon.node_id: node}

    @property
    def overlay(self):
        return self._daemon.overlay

    @property
    def metrics(self):
        return self._daemon.metrics

    @property
    def transport(self):
        return self._daemon.transport


class _PeerLink:
    """One live connection to a peer, with a bounded outbound queue."""

    __slots__ = (
        "peer_id", "writer", "outbox", "writer_task", "reader_task",
        "welcomed", "codec", "overflows", "on_overflow",
    )

    def __init__(self, peer_id: str, writer: asyncio.StreamWriter,
                 codec: str, limit: int = 0, on_overflow=None):
        self.peer_id = peer_id
        self.writer = writer
        self.codec = codec
        self.outbox: asyncio.Queue = asyncio.Queue(maxsize=limit)
        self.writer_task: Optional[asyncio.Task] = None
        self.reader_task: Optional[asyncio.Task] = None
        self.welcomed = asyncio.Event()
        self.overflows = 0
        self.on_overflow = on_overflow

    def send_json(self, obj: dict) -> None:
        frame = encode_frame(obj, self.codec)
        try:
            self.outbox.put_nowait(frame)
        except asyncio.QueueFull:
            # A peer that stopped draining (dead socket, wedged reader)
            # must not grow our heap: drop and count.  The protocol's
            # recovery machinery treats this like any other lost frame.
            self.overflows += 1
            if self.on_overflow is not None:
                self.on_overflow(self)

    async def drain_outbox(self) -> None:
        writer = self.writer
        while True:
            frame = await self.outbox.get()
            writer.write(frame)
            await writer.drain()

    def close(self) -> None:
        if self.writer_task is not None:
            self.writer_task.cancel()
        with contextlib.suppress(Exception):
            self.writer.close()


class _PeerHealth:
    """Dial/liveness bookkeeping for one peer.

    ``state`` walks ``alive -> suspect -> dead``; any received traffic
    snaps it back to ``alive`` and zeroes the failure count.  The two
    timer handles are the peer's pending backoff redial and (while
    suspect) the grace deadline before it is declared dead.
    """

    __slots__ = ("state", "dial_failures", "retry_handle", "grace_handle")

    def __init__(self):
        self.state = "alive"
        self.dial_failures = 0
        self.retry_handle = None
        self.grace_handle = None

    def cancel_timers(self) -> None:
        for handle in (self.retry_handle, self.grace_handle):
            if handle is not None:
                handle.cancel()
        self.retry_handle = None
        self.grace_handle = None


class LiveNode:
    """One daemon: listener, peer mesh, and the hosted CupNode."""

    def __init__(self, config: LiveNodeConfig):
        self.config = config
        self.node_id: Optional[str] = None
        self.clock: Optional[LiveClock] = None
        self.metrics = MetricsCollector()
        self.overlay = ChordOverlay(bits=config.overlay_bits)
        self.transport: Optional[LiveTransport] = None
        self.node: Optional[CupNode] = None
        self.checker = None
        self.keepalive: Optional[KeepAliveMonitor] = None
        self.members: Set[str] = set()
        self._conns: Dict[str, _PeerLink] = {}
        self._dialing: Dict[str, asyncio.Task] = {}
        self._health: Dict[str, _PeerHealth] = {}
        self._seeds: Set[str] = set()
        self._store: Optional[NodeStore] = None
        self._snapshot_process: Optional[PeriodicProcess] = None
        self._rejoined = False
        self._server: Optional[asyncio.base_events.Server] = None
        self._gc_process: Optional[PeriodicProcess] = None
        self._stopped = asyncio.Event()
        self._stopping = False

    # ------------------------------------------------------------------
    # Router interface (consumed by LiveTransport)
    # ------------------------------------------------------------------

    def is_peer(self, node_id) -> bool:
        return node_id in self.members

    def call_soon(self, fn, *args) -> None:
        self.clock.call_soon(fn, *args)

    def send_wire(self, src, dst, message, direct: bool) -> bool:
        link = self._conns.get(dst)
        if link is None:
            if dst in self.members and not self._stopping:
                # Heal in the background; this frame is dropped (the
                # caller counts it) and the protocol's own retry
                # machinery re-covers the loss.
                self._ensure_link(dst)
            return False
        link.send_json({
            "t": "direct" if direct else "msg",
            "src": src,
            "m": message_to_wire(message),
        })
        return True

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    async def start(self) -> None:
        config = self.config
        loop = asyncio.get_running_loop()
        self.clock = LiveClock(loop)
        self.transport = LiveTransport(self.clock, router=self)
        self.transport.attach_metrics(self.metrics)
        self._server = await asyncio.start_server(
            self._on_connection, config.host, config.port
        )
        port = self._server.sockets[0].getsockname()[1]
        self.node_id = config.node_id or f"{config.host}:{port}"
        self.members.add(self.node_id)
        self.overlay.join(self.node_id)
        is_cup = config.mode == "cup"
        self.node = CupNode(
            node_id=self.node_id,
            sim=self.clock,
            transport=self.transport,
            overlay=self.overlay,
            policy=make_policy(config.policy),
            metrics=self.metrics,
            persistent_interest=is_cup,
            coalesce=is_cup,
            pfu_timeout=config.pfu_timeout,
            recovery_config=RecoveryConfig() if config.recovery else None,
        )
        self.transport.register(self.node_id, self.node)
        if config.invariants:
            from repro.invariants.checker import InvariantChecker

            self.checker = InvariantChecker(
                LocalNetworkView(self),
                hazards=("churn", "crash"),
                raise_immediately=False,
            )
            self.transport.add_send_observer(self.checker.on_send)
            self.node.invariant_probe = self.checker
        self.keepalive = KeepAliveMonitor(
            self.clock, self.transport, self.node_id,
            neighbors_fn=self._keepalive_targets,
            period=config.keepalive_period,
            miss_threshold=config.keepalive_misses,
            on_suspect=self._on_suspect,
        )
        self.node.keepalive_monitor = self.keepalive
        if config.state_dir is not None:
            self._store = NodeStore(config.state_dir)
            self._restore_state()
        self.keepalive.start()
        if config.gc_interval > 0:
            self._gc_process = PeriodicProcess(
                self.clock, config.gc_interval, self.node.gc
            )
        if self._store is not None:
            self._snapshot_process = PeriodicProcess(
                self.clock, config.snapshot_interval, self._snapshot_state
            )
        self._log(f"serving as {self.node_id} "
                  f"(mode={config.mode}, policy={config.policy})")
        self._seeds = {seed for seed in config.peers
                       if seed != self.node_id}
        for seed in config.peers:
            await self._join_via(seed)
        self._seeds.clear()
        if self._rejoined:
            # Best-effort re-hello toward every restored member: ones
            # that answer re-learn us (rejoin hello), ones that are
            # gone fall to the backoff/suspicion machinery and get
            # evicted — membership reconverges either way.
            for member in sorted(self.members):
                if member != self.node_id and member not in self._conns:
                    self._ensure_link(member, probe=True)
            self._reconcile_restored()

    async def _join_via(self, seed: str) -> None:
        if seed == self.node_id:
            return
        loop = self.clock.loop
        deadline = loop.time() + self.config.join_timeout
        # Keep probing until the backoff machinery lands a connection
        # or the join deadline expires — a seed that is itself still
        # booting (or briefly down) should not fail the join outright.
        while True:
            link = self._conns.get(seed)
            if link is None:
                link = await self._ensure_link(seed)
            if link is not None:
                break
            if loop.time() >= deadline:
                raise ConnectionError(
                    f"could not reach seed member {seed} within "
                    f"{self.config.join_timeout}s"
                )
            await asyncio.sleep(0.05)
        try:
            await asyncio.wait_for(
                link.welcomed.wait(),
                timeout=max(deadline - loop.time(), 0.1),
            )
        except asyncio.TimeoutError:
            raise ConnectionError(
                f"seed member {seed} sent no welcome within "
                f"{self.config.join_timeout}s"
            ) from None
        self._log(f"joined via {seed}; members={sorted(self.members)}")

    # ------------------------------------------------------------------
    # Durable state (warm rejoin)
    # ------------------------------------------------------------------

    def _restore_state(self) -> None:
        """Load the state-dir snapshot (if any) into the fresh node.

        A load failure — version skew, fingerprint skew, foreign
        identity, corrupt payload — logs loudly and starts cold rather
        than killing the daemon: the operator asked for a node, and a
        cold node is a correct (if slower) one.
        """
        try:
            state = self._store.load(
                expect_node_id=self.node_id,
                expect_mode=self.config.mode,
            )
        except CheckpointError as exc:
            self._log(f"state restore failed ({exc}); starting cold")
            return
        if state is None:
            self._log(f"no state at {self._store.path}; starting cold")
            return
        kept = sanitize_restored(state, self.clock.now)
        node = self.node
        node.cache.states.update(state.cache.states)
        node.authority_index = state.authority
        if node.recovery is not None and state.recovery is not None:
            node.recovery.import_state(state.recovery)
        peers = 0
        for member in state.members:
            if member != self.node_id and self._add_member(member):
                peers += 1
        self._rejoined = True
        self.metrics.state_restored_keys += kept
        self._log(f"warm rejoin: restored {kept} keys and {peers} "
                  f"peers from {self._store.path}")

    def _reconcile_restored(self) -> None:
        """Background pulls for every restored non-authority key.

        Restored entries serve local hits immediately, but the node was
        deaf while down: pulls re-graft its interest upstream and wash
        out any staleness accrued during the outage.  Authority keys
        and keys already mid-pull are skipped by the pull helper.
        """
        node = self.node
        for key in sorted(node.cache.states):
            node._recover_by_pull(key)

    def _snapshot_state(self) -> None:
        if self._store is None:
            return
        try:
            self._store.save(self)
        except Exception as exc:  # disk full, perms — keep serving
            self.metrics.state_snapshot_failures += 1
            self._log(f"state snapshot failed: {exc}")
        else:
            self.metrics.state_snapshots += 1

    async def serve_forever(self) -> None:
        await self._stopped.wait()

    def request_stop(self) -> None:
        """Begin a graceful shutdown (idempotent, callable from signals)."""
        if self._stopping:
            return
        self._stopping = True
        asyncio.ensure_future(self._shutdown())

    async def _shutdown(self) -> None:
        self._log("leaving the cluster")
        if self.keepalive is not None:
            self.keepalive.stop()
        if self._gc_process is not None:
            self._gc_process.stop()
        if self._snapshot_process is not None:
            self._snapshot_process.stop()
        self._snapshot_state()  # the state a graceful stop resumes from
        for health in self._health.values():
            health.cancel_timers()
        for link in list(self._conns.values()):
            link.send_json({"t": "leaving", "id": self.node_id})
        # One breath for the leaving frames to flush through the queues.
        await asyncio.sleep(0.05)
        for task in list(self._dialing.values()):
            task.cancel()
        for link in list(self._conns.values()):
            if link.reader_task is not None:
                link.reader_task.cancel()
            link.close()
        self._conns.clear()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        self._stopped.set()

    # ------------------------------------------------------------------
    # Membership
    # ------------------------------------------------------------------

    def _keepalive_targets(self):
        return self.overlay.neighbors(self.node_id)

    def _add_member(self, member: str) -> bool:
        if member in self.members:
            return False
        self.members.add(member)
        # A (re)joining member starts with a clean bill of health —
        # stale suspicion from a previous incarnation must not linger.
        stale = self._health.pop(member, None)
        if stale is not None:
            stale.cancel_timers()
        self.overlay.join(member)
        if self.checker is not None:
            self.checker.on_membership_change("join", member)
        return True

    def _remove_member(self, member: str, reason: str) -> None:
        if member == self.node_id or member not in self.members:
            return
        self.members.discard(member)
        health = self._health.pop(member, None)
        if health is not None:
            health.cancel_timers()
        self.overlay.leave(member)
        self.node.patch_after_churn(self.members)
        if self.checker is not None:
            self.checker.on_membership_change(reason, member)
        link = self._conns.pop(member, None)
        if link is not None:
            if link.reader_task is not None:
                link.reader_task.cancel()
            link.close()
        self._log(f"member {member} removed ({reason}); "
                  f"members={sorted(self.members)}")

    # ------------------------------------------------------------------
    # Peer health (alive -> suspect -> dead)
    # ------------------------------------------------------------------

    def _health_of(self, peer_id: str) -> _PeerHealth:
        health = self._health.get(peer_id)
        if health is None:
            health = self._health[peer_id] = _PeerHealth()
        return health

    def _peer_alive(self, peer_id: str) -> None:
        """Any contact with the peer clears suspicion and backoff."""
        health = self._health.get(peer_id)
        if health is None:
            return
        health.dial_failures = 0
        health.cancel_timers()
        if health.state != "alive":
            self._log(f"member {peer_id} is back ({health.state} "
                      "cleared)")
            health.state = "alive"

    def _on_suspect(self, _reporter, suspect) -> None:
        # KeepAliveMonitor fires once per suspicion episode; a second
        # firing means a probe re-armed it and the peer stayed silent.
        health = self._health_of(suspect)
        if health.state == "alive":
            self._mark_suspect(suspect, "keep-alive misses")
        elif health.state == "suspect":
            self._declare_dead(suspect, "keep-alive misses while suspect")

    def _mark_suspect(self, peer_id: str, why: str) -> None:
        if self._stopping or peer_id not in self.members:
            return
        health = self._health_of(peer_id)
        if health.state != "alive":
            return
        health.state = "suspect"
        self.metrics.peers_suspected += 1
        self._log(f"member {peer_id} suspected ({why})")
        # Probe immediately: a suspicion must resolve, not linger.
        self._ensure_link(peer_id, probe=True)
        if health.grace_handle is None:
            grace = (self.config.keepalive_period
                     * self.config.keepalive_misses)
            health.grace_handle = self.clock.loop.call_later(
                grace, self._suspect_grace_expired, peer_id
            )

    def _suspect_grace_expired(self, peer_id: str) -> None:
        health = self._health.get(peer_id)
        if health is None or health.state != "suspect":
            return
        health.grace_handle = None
        self._declare_dead(peer_id, "suspicion grace expired")

    def _declare_dead(self, peer_id: str, why: str) -> None:
        if self._stopping or peer_id not in self.members:
            return
        health = self._health.get(peer_id)
        if health is not None:
            health.state = "dead"
            health.cancel_timers()
        self.metrics.peers_declared_dead += 1
        self._log(f"member {peer_id} declared dead ({why})")
        self._remove_member(peer_id, "crash")

    # ------------------------------------------------------------------
    # Connections
    # ------------------------------------------------------------------

    def _ensure_link(self, peer_id: str, probe: bool = False):
        """A live link to ``peer_id`` — existing, or a background dial.

        Returns the link when one is already up; otherwise returns the
        (possibly fresh) dial task's eventual link via ``await``, or
        ``None`` synchronously for fire-and-forget callers.  While the
        peer is in backoff cooldown, plain callers get ``None`` — the
        pending redial owns the next attempt — and only ``probe=True``
        callers (suspicion probes, client puts, joins) cut the cooldown
        short and dial now.
        """
        link = self._conns.get(peer_id)
        if link is not None:
            return _immediate(link)
        task = self._dialing.get(peer_id)
        if task is not None:
            return task
        health = self._health.get(peer_id)
        if health is not None and health.retry_handle is not None:
            if not probe:
                return _immediate(None)
            health.retry_handle.cancel()
            health.retry_handle = None
        task = asyncio.ensure_future(self._dial(peer_id))
        self._dialing[peer_id] = task
        task.add_done_callback(
            lambda _t: self._dialing.pop(peer_id, None)
        )
        return task

    def _make_link(self, peer_id: str,
                   writer: asyncio.StreamWriter) -> _PeerLink:
        return _PeerLink(
            peer_id, writer, self.config.codec,
            limit=self.config.outbox_limit,
            on_overflow=self._outbox_overflow,
        )

    def _outbox_overflow(self, link: _PeerLink) -> None:
        self.metrics.outbox_overflows += 1
        if link.overflows == 1:
            self._log(f"outbox to {link.peer_id} full "
                      f"({self.config.outbox_limit} frames); dropping")

    async def _dial(self, peer_id: str):
        host, _, port = peer_id.rpartition(":")
        try:
            reader, writer = await asyncio.open_connection(host, int(port))
        except (OSError, ValueError) as exc:
            self._note_dial_failure(peer_id, exc)
            return None
        self._peer_alive(peer_id)
        link = self._make_link(peer_id, writer)
        self._register_link(link)
        hello = {"t": "hello", "id": self.node_id}
        if self._rejoined:
            hello["rejoin"] = True
        link.send_json(hello)
        link.reader_task = asyncio.ensure_future(
            self._peer_read_loop(link, reader)
        )
        return link

    def _backoff_delay(self, failures: int) -> float:
        config = self.config
        delay = min(
            config.dial_backoff_base * (2 ** max(failures - 1, 0)),
            config.dial_backoff_max,
        )
        return delay * (1.0 + config.dial_backoff_jitter
                        * random.random())

    def _wants_link(self, peer_id: str) -> bool:
        return (not self._stopping
                and peer_id != self.node_id
                and peer_id not in self._conns
                and (peer_id in self.members or peer_id in self._seeds))

    def _note_dial_failure(self, peer_id: str, exc: Exception) -> None:
        if self._stopping:
            return
        self.metrics.dial_failures += 1
        health = self._health_of(peer_id)
        health.dial_failures += 1
        failures = health.dial_failures
        if peer_id in self.members:
            if failures >= self.config.dead_after:
                self._declare_dead(
                    peer_id, f"{failures} consecutive dial failures"
                )
                return
            if failures >= self.config.suspect_after:
                self._mark_suspect(
                    peer_id, f"{failures} consecutive dial failures"
                )
        elif peer_id not in self._seeds:
            # Neither a member nor a seed being joined: nobody wants
            # this link anymore, so don't keep a retry alive for it.
            self._health.pop(peer_id, None)
            return
        delay = self._backoff_delay(failures)
        self._log(f"dial {peer_id} failed ({exc}); "
                  f"retry {failures} in {delay:.2f}s")
        if health.retry_handle is not None:
            health.retry_handle.cancel()
        health.retry_handle = self.clock.loop.call_later(
            delay, self._redial, peer_id
        )

    def _redial(self, peer_id: str) -> None:
        health = self._health.get(peer_id)
        if health is not None:
            health.retry_handle = None
        if not self._wants_link(peer_id):
            return
        self.metrics.dial_retries += 1
        self._ensure_link(peer_id, probe=True)

    def _register_link(self, link: _PeerLink) -> None:
        # Simultaneous dials can race a second connection into place;
        # the newest wins the registry and the older one drains until
        # its EOF (frames on either are delivered — TCP order holds per
        # connection, and the recovery layer absorbs cross-connection
        # reordering like any other transport anomaly).
        self._conns[link.peer_id] = link
        link.writer_task = asyncio.ensure_future(link.drain_outbox())

    def _link_closed(self, link: _PeerLink) -> None:
        link.close()
        if self._conns.get(link.peer_id) is link:
            del self._conns[link.peer_id]
            # A member's link dropping is the first crash signal most
            # peers get (keep-alives only probe overlay neighbors):
            # redial so the backoff machinery either heals the mesh or
            # escalates through suspect -> dead and evicts the member.
            if self._wants_link(link.peer_id):
                self._ensure_link(link.peer_id)

    async def _peer_read_loop(self, link: _PeerLink,
                              reader: asyncio.StreamReader) -> None:
        decoder = FrameDecoder()
        try:
            while True:
                data = await reader.read(_READ_CHUNK)
                if not data:
                    break
                for frame in decoder.feed(data):
                    self._process_peer_frame(link, frame)
        except WireError as exc:
            self._log(f"dropping corrupt link to {link.peer_id}: {exc}")
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            self._link_closed(link)

    def _process_peer_frame(self, link: _PeerLink, frame: dict) -> None:
        # Any frame from the peer proves life: clear suspicion/backoff.
        self._peer_alive(link.peer_id)
        t = frame.get("t")
        if t == "msg" or t == "direct":
            self.transport.deliver_wire(
                frame.get("src"), self.node_id,
                message_from_wire(frame["m"]),
            )
        elif t == "welcome":
            for member in frame.get("members", ()):
                if not isinstance(member, str) or member == self.node_id:
                    continue
                self._add_member(member)
                if member not in self._conns and member not in self._dialing:
                    self._ensure_link(member)
            link.welcomed.set()
        elif t == "joined":
            member = frame.get("id")
            if isinstance(member, str):
                self._add_member(member)
        elif t == "leaving":
            member = frame.get("id")
            if isinstance(member, str):
                self._remove_member(member, "leave")
        elif t == "hello":
            # A re-hello on an established link: answer with the current
            # member list (harmless, keeps the handshake idempotent).
            self._welcome(link, frame)
        else:
            raise WireError(f"unknown peer frame type {t!r}")

    def _welcome(self, link: _PeerLink, hello: dict) -> None:
        peer_id = hello.get("id")
        if not isinstance(peer_id, str) or not peer_id:
            raise WireError(f"hello frame without a valid id: {hello!r}")
        fresh = self._add_member(peer_id)
        link.send_json({
            "t": "welcome",
            "id": self.node_id,
            "members": sorted(self.members),
        })
        if fresh:
            for other_id, other in list(self._conns.items()):
                if other_id != peer_id:
                    other.send_json({"t": "joined", "id": peer_id})
            how = "rejoined warm" if hello.get("rejoin") else "joined"
            self._log(f"member {peer_id} {how}; "
                      f"members={sorted(self.members)}")

    # ------------------------------------------------------------------
    # Inbound connections (peers and clients share the listener)
    # ------------------------------------------------------------------

    async def _on_connection(self, reader: asyncio.StreamReader,
                             writer: asyncio.StreamWriter) -> None:
        decoder = FrameDecoder()
        link: Optional[_PeerLink] = None
        stop_after = False
        try:
            while not stop_after:
                data = await reader.read(_READ_CHUNK)
                if not data:
                    break
                for frame in decoder.feed(data):
                    if link is not None:
                        self._process_peer_frame(link, frame)
                    elif frame.get("t") == "hello":
                        peer_id = frame.get("id")
                        if not isinstance(peer_id, str) or not peer_id:
                            raise WireError(
                                f"hello frame without a valid id: {frame!r}"
                            )
                        link = self._make_link(peer_id, writer)
                        self._register_link(link)
                        self._welcome(link, frame)
                    else:
                        stop_after = await self._handle_client_frame(
                            frame, writer
                        )
                        if stop_after:
                            break
        except WireError as exc:
            self._log(f"dropping corrupt connection: {exc}")
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            if link is not None:
                self._link_closed(link)
            else:
                with contextlib.suppress(Exception):
                    writer.close()
        if stop_after:
            self.request_stop()

    # ------------------------------------------------------------------
    # Client operations
    # ------------------------------------------------------------------

    async def _handle_client_frame(self, frame: dict,
                                   writer: asyncio.StreamWriter) -> bool:
        """Serve one client request; returns True for a stop request."""
        t = frame.get("t")
        stop = False
        try:
            if t == "put":
                reply = await self._client_put(frame)
            elif t == "get":
                reply = await self._client_get(frame)
            elif t == "info":
                reply = self._client_info()
            elif t == "audit":
                reply = self._client_audit()
            elif t == "hazard":
                reply = self._client_hazard(frame)
            elif t == "stop":
                reply = {"t": "ok", "id": self.node_id}
                stop = True
            else:
                reply = {"t": "error",
                         "error": f"unknown request type {t!r}"}
        except Exception as exc:  # a bad request must not kill the node
            reply = {"t": "error", "error": f"{type(exc).__name__}: {exc}"}
        writer.write(encode_frame(reply, self.config.codec))
        await writer.drain()
        return stop

    async def _client_put(self, frame: dict) -> dict:
        key = frame["key"]
        message = ReplicaMessage(
            event=ReplicaEvent(frame.get("event", "birth")),
            key=key,
            replica_id=frame["replica_id"],
            address=frame.get("address", ""),
            lifetime=float(frame.get("lifetime", 300.0)),
        )
        authority = self.overlay.authority(key)
        if authority != self.node_id:
            # A replica announcement is fire-and-forget control traffic
            # with no retry of its own, so unlike protocol sends (whose
            # loss the recovery machinery absorbs) it must not race a
            # link that is still dialing: wait for the connection.  A
            # probe dial cuts through any backoff cooldown — the client
            # asked now, and the answer should be fresh.
            link = await self._ensure_link(authority, probe=True)
            if link is None:
                return {"t": "error", "authority": authority,
                        "error": f"authority {authority} is unreachable"}
        self.transport.send_direct(authority, message)
        return {"t": "ok", "authority": authority}

    async def _client_get(self, frame: dict) -> dict:
        key = frame["key"]
        timeout = float(frame.get("timeout", 5.0))
        node = self.node
        loop = self.clock.loop
        deadline = loop.time() + timeout
        hit = node.post_local_query(key)
        last_query = loop.time()
        state = node.cache.get_or_create(key)
        while True:
            now = self.clock.now
            if node._is_authority(key, state):
                entries = list(
                    node.authority_index.fresh_entries(key, now)
                )
                if entries:
                    break
                # The authoritative index is empty: keep polling — a
                # birth may still be in flight — until the deadline
                # reports an authoritative miss.
            elif state.has_fresh(now):
                entries = list(state.fresh_entries(now))
                break
            remaining = deadline - loop.time()
            if remaining <= 0:
                return {"t": "result", "ok": False, "hit": False,
                        "key": key, "entries": [],
                        "error": f"no fresh entries within {timeout}s"}
            if loop.time() - last_query >= 1.0:
                # Re-post past the PFU timeout so a query frame lost to
                # a mid-dial window gets re-pushed upstream.
                node.post_local_query(key)
                last_query = loop.time()
            await asyncio.sleep(min(0.02, max(remaining, 0.001)))
        return {
            "t": "result", "ok": True, "hit": hit, "key": key,
            "entries": [entry_to_wire(e) for e in entries],
            "authority": self.overlay.authority(key),
        }

    def _client_info(self) -> dict:
        checker = self.checker
        recovery = self.node.recovery
        store = self._store
        return {
            "t": "info",
            "id": self.node_id,
            "members": sorted(self.members),
            "connections": sorted(self._conns),
            "mode": self.config.mode,
            "rejoined": self._rejoined,
            "transport": {
                "sent": self.transport.sent,
                "sent_direct": self.transport.sent_direct,
                "received": self.transport.received,
                "delivered": self.transport.delivered,
                "dropped": self.transport.dropped,
            },
            "recovery": self.metrics.recovery_report(),
            "open_gaps": (
                len(recovery.open_gaps()) if recovery is not None else 0
            ),
            "livenode": self.metrics.livenode_report(),
            "peers": {
                peer: {"state": health.state,
                       "dial_failures": health.dial_failures}
                for peer, health in sorted(self._health.items())
            },
            "persistence": (
                None if store is None
                else {"path": store.path, "saves": store.saves}
            ),
            "violations": (
                len(checker.violations) if checker is not None else None
            ),
        }

    def _client_hazard(self, frame: dict) -> dict:
        """Open/close the checker's hazard windows (drill orchestration).

        A chaos driver injects a real fault, then tells each *survivor*
        which hazards its checker should tolerate while the fault's
        effects wash through — the live twin of the simulator scenarios
        declaring hazards per phase.
        """
        checker = self.checker
        if checker is None:
            return {"t": "error",
                    "error": "invariants disabled on this node"}
        action = frame.get("action", "open")
        hazards = frame.get("hazards") or []
        if action == "open":
            duration = frame.get("duration")
            checker.open_hazard_window(
                hazards,
                None if duration is None else float(duration),
            )
        elif action == "close":
            checker.close_hazard_window(hazards or None)
        else:
            return {"t": "error",
                    "error": f"unknown hazard action {action!r}"}
        return {"t": "ok", "id": self.node_id,
                "active": sorted(checker.active_hazards())}

    def _client_audit(self) -> dict:
        checker = self.checker
        if checker is None:
            return {"t": "audit", "ok": None, "violations": [],
                    "error": "invariants disabled on this node"}
        before = len(checker.violations)
        checker.check_quiescent()
        fresh = checker.violations[before:]
        return {
            "t": "audit",
            "ok": not checker.violations,
            "violations": [str(v) for v in checker.violations],
            "fresh_violations": [str(v) for v in fresh],
            "audits_run": checker.audits_run,
        }

    # ------------------------------------------------------------------
    # Misc
    # ------------------------------------------------------------------

    def _log(self, text: str) -> None:
        if not self.config.quiet:
            prefix = self.node_id or f"{self.config.host}:?"
            print(f"[{prefix}] {text}", flush=True)


def _immediate(value):
    """An awaitable resolving instantly to ``value`` (link cache hits)."""
    future = asyncio.get_event_loop().create_future()
    future.set_result(value)
    return future


async def run_node(config: LiveNodeConfig,
                   install_signals: bool = True) -> LiveNode:
    """Start a node, serve until stopped, return the (stopped) node."""
    import signal

    node = LiveNode(config)
    await node.start()
    if install_signals:
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGINT, signal.SIGTERM):
            with contextlib.suppress(NotImplementedError, RuntimeError):
                loop.add_signal_handler(signum, node.request_stop)
    await node.serve_forever()
    return node


def serve(config: LiveNodeConfig) -> int:
    """Blocking entry point used by ``repro node serve|join``."""
    try:
        asyncio.run(run_node(config))
    except ConnectionError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except KeyboardInterrupt:  # pragma: no cover - signal-handler race
        pass
    return 0
