"""The live CUP node: an asyncio daemon over the shared protocol core.

One :class:`LiveNode` process hosts exactly one
:class:`~repro.core.node.CupNode` — constructed with the *same* classes
the simulator uses (cache, policies, recovery, keep-alive, channels) on
top of :class:`~repro.net.clock.LiveClock` and
:class:`~repro.net.transport.LiveTransport`.  Nothing in ``core/`` knows
whether it is being simulated.

Cluster mechanics
-----------------

* **Identity.**  A node's id *is* its dialable listen address
  (``"host:port"``), so the membership set doubles as the address book
  and :class:`~repro.overlay.chord.ChordOverlay` — which accepts any
  hashable id — hashes it onto the ring.  Every member derives the same
  ring from the same membership, so routing agrees cluster-wide without
  a coordination protocol.

* **Join.**  A newcomer dials any seed member and sends ``hello``; the
  seed replies ``welcome`` (the full member list) and broadcasts
  ``joined`` to everyone else.  The newcomer then dials every member it
  learned of.  Established members never dial newcomers eagerly — but
  any send toward a member without a connection triggers a background
  heal dial, so the mesh self-repairs (the frame that triggered the
  heal is dropped and counted, exactly like a simulator send to a
  departed node; CUP's PFU timeout and recovery NACKs take it from
  there).

* **Leave / failure.**  Graceful shutdown broadcasts ``leaving``.
  Silent death is caught by the same
  :class:`~repro.core.keepalive.KeepAliveMonitor` the simulator uses:
  heartbeats ride the live transport, any received traffic proves life,
  and a suspicion removes the member locally — the overlay absorbs its
  arc and interest bits are patched (§2.9).

* **Clients.**  A connection whose first frame is not ``hello`` is a
  client session: ``put`` routes a replica birth/refresh to the key's
  authority, ``get`` posts a local query and awaits the CUP response
  machinery, ``audit`` runs the attached invariant checker's quiescence
  sweep, ``info`` and ``stop`` do what they say.

The invariant checker attaches to the live stack through
:class:`LocalNetworkView` — the one-node "network" this process can
see — with ``churn``/``crash`` hazards declared (peers come and go),
so every structural, monotonicity and cost-balance check runs against
real sockets.
"""

from __future__ import annotations

import asyncio
import contextlib
import dataclasses
import sys
from typing import Dict, Optional, Set, Tuple

from repro.core.keepalive import KeepAliveMonitor
from repro.core.messages import ReplicaEvent, ReplicaMessage
from repro.core.node import CupNode
from repro.core.policies import make_policy
from repro.core.recovery import RecoveryConfig
from repro.metrics.collector import MetricsCollector
from repro.net.clock import LiveClock
from repro.net.transport import LiveTransport
from repro.net.wire import (
    FrameDecoder,
    WireError,
    encode_frame,
    entry_to_wire,
    message_from_wire,
    message_to_wire,
    resolve_codec,
)
from repro.overlay.chord import ChordOverlay
from repro.sim.process import PeriodicProcess

_READ_CHUNK = 1 << 16


@dataclasses.dataclass(frozen=True)
class LiveNodeConfig:
    """Everything a live node needs to serve.

    ``node_id`` defaults to ``"host:port"`` once the listener is bound
    (so ``port=0`` — pick a free port — works); when overridden it must
    still be a dialable ``host:port`` string, because peers use member
    ids as addresses.
    """

    host: str = "127.0.0.1"
    port: int = 9400
    node_id: Optional[str] = None
    #: Seed member addresses to join through (empty = found a cluster).
    peers: Tuple[str, ...] = ()
    mode: str = "cup"  # "cup" | "standard"
    policy: str = "second-chance"
    pfu_timeout: float = 3.0
    keepalive_period: float = 2.0
    keepalive_misses: int = 3
    #: Garbage-collect expired cache state this often (0 disables).
    gc_interval: float = 60.0
    overlay_bits: int = 32
    codec: str = "json"
    invariants: bool = True
    #: Run the unreliable-transport recovery layer.  TCP is reliable
    #: per-connection, but frames sent while a link is still dialing are
    #: dropped — gap detection + NACK recovers them.
    recovery: bool = True
    join_timeout: float = 10.0
    quiet: bool = False

    def __post_init__(self):
        if self.mode not in ("cup", "standard"):
            raise ValueError(f"mode must be 'cup' or 'standard', got "
                             f"{self.mode!r}")
        resolve_codec(self.codec)  # fail fast on unavailable codecs


class LocalNetworkView:
    """The 'network' surface the invariant checker reads, one node wide.

    :class:`~repro.invariants.checker.InvariantChecker` consumes
    ``network.sim.now``, ``network.nodes``, ``network.overlay``,
    ``network.metrics`` and ``network.transport``; this adapter lends a
    daemon those attributes so the checker runs unmodified against live
    sockets.
    """

    def __init__(self, daemon: "LiveNode"):
        self._daemon = daemon

    @property
    def sim(self):
        return self._daemon.clock

    @property
    def nodes(self):
        node = self._daemon.node
        return {} if node is None else {self._daemon.node_id: node}

    @property
    def overlay(self):
        return self._daemon.overlay

    @property
    def metrics(self):
        return self._daemon.metrics

    @property
    def transport(self):
        return self._daemon.transport


class _PeerLink:
    """One live connection to a peer, with an ordered outbound queue."""

    __slots__ = (
        "peer_id", "writer", "outbox", "writer_task", "reader_task",
        "welcomed", "codec",
    )

    def __init__(self, peer_id: str, writer: asyncio.StreamWriter,
                 codec: str):
        self.peer_id = peer_id
        self.writer = writer
        self.codec = codec
        self.outbox: asyncio.Queue = asyncio.Queue()
        self.writer_task: Optional[asyncio.Task] = None
        self.reader_task: Optional[asyncio.Task] = None
        self.welcomed = asyncio.Event()

    def send_json(self, obj: dict) -> None:
        self.outbox.put_nowait(encode_frame(obj, self.codec))

    async def drain_outbox(self) -> None:
        writer = self.writer
        while True:
            frame = await self.outbox.get()
            writer.write(frame)
            await writer.drain()

    def close(self) -> None:
        if self.writer_task is not None:
            self.writer_task.cancel()
        with contextlib.suppress(Exception):
            self.writer.close()


class LiveNode:
    """One daemon: listener, peer mesh, and the hosted CupNode."""

    def __init__(self, config: LiveNodeConfig):
        self.config = config
        self.node_id: Optional[str] = None
        self.clock: Optional[LiveClock] = None
        self.metrics = MetricsCollector()
        self.overlay = ChordOverlay(bits=config.overlay_bits)
        self.transport: Optional[LiveTransport] = None
        self.node: Optional[CupNode] = None
        self.checker = None
        self.keepalive: Optional[KeepAliveMonitor] = None
        self.members: Set[str] = set()
        self._conns: Dict[str, _PeerLink] = {}
        self._dialing: Dict[str, asyncio.Task] = {}
        self._server: Optional[asyncio.base_events.Server] = None
        self._gc_process: Optional[PeriodicProcess] = None
        self._stopped = asyncio.Event()
        self._stopping = False

    # ------------------------------------------------------------------
    # Router interface (consumed by LiveTransport)
    # ------------------------------------------------------------------

    def is_peer(self, node_id) -> bool:
        return node_id in self.members

    def call_soon(self, fn, *args) -> None:
        self.clock.call_soon(fn, *args)

    def send_wire(self, src, dst, message, direct: bool) -> bool:
        link = self._conns.get(dst)
        if link is None:
            if dst in self.members and not self._stopping:
                # Heal in the background; this frame is dropped (the
                # caller counts it) and the protocol's own retry
                # machinery re-covers the loss.
                self._ensure_link(dst)
            return False
        link.send_json({
            "t": "direct" if direct else "msg",
            "src": src,
            "m": message_to_wire(message),
        })
        return True

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    async def start(self) -> None:
        config = self.config
        loop = asyncio.get_running_loop()
        self.clock = LiveClock(loop)
        self.transport = LiveTransport(self.clock, router=self)
        self.transport.attach_metrics(self.metrics)
        self._server = await asyncio.start_server(
            self._on_connection, config.host, config.port
        )
        port = self._server.sockets[0].getsockname()[1]
        self.node_id = config.node_id or f"{config.host}:{port}"
        self.members.add(self.node_id)
        self.overlay.join(self.node_id)
        is_cup = config.mode == "cup"
        self.node = CupNode(
            node_id=self.node_id,
            sim=self.clock,
            transport=self.transport,
            overlay=self.overlay,
            policy=make_policy(config.policy),
            metrics=self.metrics,
            persistent_interest=is_cup,
            coalesce=is_cup,
            pfu_timeout=config.pfu_timeout,
            recovery_config=RecoveryConfig() if config.recovery else None,
        )
        self.transport.register(self.node_id, self.node)
        if config.invariants:
            from repro.invariants.checker import InvariantChecker

            self.checker = InvariantChecker(
                LocalNetworkView(self),
                hazards=("churn", "crash"),
                raise_immediately=False,
            )
            self.transport.add_send_observer(self.checker.on_send)
            self.node.invariant_probe = self.checker
        self.keepalive = KeepAliveMonitor(
            self.clock, self.transport, self.node_id,
            neighbors_fn=self._keepalive_targets,
            period=config.keepalive_period,
            miss_threshold=config.keepalive_misses,
            on_suspect=self._on_suspect,
        )
        self.node.keepalive_monitor = self.keepalive
        self.keepalive.start()
        if config.gc_interval > 0:
            self._gc_process = PeriodicProcess(
                self.clock, config.gc_interval, self.node.gc
            )
        self._log(f"serving as {self.node_id} "
                  f"(mode={config.mode}, policy={config.policy})")
        for seed in config.peers:
            await self._join_via(seed)

    async def _join_via(self, seed: str) -> None:
        if seed == self.node_id:
            return
        link = await self._ensure_link(seed)
        if link is None:
            raise ConnectionError(f"could not reach seed member {seed}")
        try:
            await asyncio.wait_for(
                link.welcomed.wait(), timeout=self.config.join_timeout
            )
        except asyncio.TimeoutError:
            raise ConnectionError(
                f"seed member {seed} sent no welcome within "
                f"{self.config.join_timeout}s"
            ) from None
        self._log(f"joined via {seed}; members={sorted(self.members)}")

    async def serve_forever(self) -> None:
        await self._stopped.wait()

    def request_stop(self) -> None:
        """Begin a graceful shutdown (idempotent, callable from signals)."""
        if self._stopping:
            return
        self._stopping = True
        asyncio.ensure_future(self._shutdown())

    async def _shutdown(self) -> None:
        self._log("leaving the cluster")
        if self.keepalive is not None:
            self.keepalive.stop()
        if self._gc_process is not None:
            self._gc_process.stop()
        for link in list(self._conns.values()):
            link.send_json({"t": "leaving", "id": self.node_id})
        # One breath for the leaving frames to flush through the queues.
        await asyncio.sleep(0.05)
        for task in list(self._dialing.values()):
            task.cancel()
        for link in list(self._conns.values()):
            if link.reader_task is not None:
                link.reader_task.cancel()
            link.close()
        self._conns.clear()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        self._stopped.set()

    # ------------------------------------------------------------------
    # Membership
    # ------------------------------------------------------------------

    def _keepalive_targets(self):
        return self.overlay.neighbors(self.node_id)

    def _add_member(self, member: str) -> bool:
        if member in self.members:
            return False
        self.members.add(member)
        self.overlay.join(member)
        if self.checker is not None:
            self.checker.on_membership_change("join", member)
        return True

    def _remove_member(self, member: str, reason: str) -> None:
        if member == self.node_id or member not in self.members:
            return
        self.members.discard(member)
        self.overlay.leave(member)
        self.node.patch_after_churn(self.members)
        if self.checker is not None:
            self.checker.on_membership_change(reason, member)
        link = self._conns.pop(member, None)
        if link is not None:
            if link.reader_task is not None:
                link.reader_task.cancel()
            link.close()
        self._log(f"member {member} removed ({reason}); "
                  f"members={sorted(self.members)}")

    def _on_suspect(self, _reporter, suspect) -> None:
        self._remove_member(suspect, "crash")

    # ------------------------------------------------------------------
    # Connections
    # ------------------------------------------------------------------

    def _ensure_link(self, peer_id: str):
        """A live link to ``peer_id`` — existing, or a background dial.

        Returns the link when one is already up; otherwise returns the
        (possibly fresh) dial task's eventual link via ``await``, or
        ``None`` synchronously for fire-and-forget callers.
        """
        link = self._conns.get(peer_id)
        if link is not None:
            return _immediate(link)
        task = self._dialing.get(peer_id)
        if task is None:
            task = asyncio.ensure_future(self._dial(peer_id))
            self._dialing[peer_id] = task
            task.add_done_callback(
                lambda _t: self._dialing.pop(peer_id, None)
            )
        return task

    async def _dial(self, peer_id: str):
        host, _, port = peer_id.rpartition(":")
        try:
            reader, writer = await asyncio.open_connection(host, int(port))
        except (OSError, ValueError) as exc:
            self._log(f"dial {peer_id} failed: {exc}")
            return None
        link = _PeerLink(peer_id, writer, self.config.codec)
        self._register_link(link)
        link.send_json({"t": "hello", "id": self.node_id})
        link.reader_task = asyncio.ensure_future(
            self._peer_read_loop(link, reader)
        )
        return link

    def _register_link(self, link: _PeerLink) -> None:
        # Simultaneous dials can race a second connection into place;
        # the newest wins the registry and the older one drains until
        # its EOF (frames on either are delivered — TCP order holds per
        # connection, and the recovery layer absorbs cross-connection
        # reordering like any other transport anomaly).
        self._conns[link.peer_id] = link
        link.writer_task = asyncio.ensure_future(link.drain_outbox())

    def _link_closed(self, link: _PeerLink) -> None:
        link.close()
        if self._conns.get(link.peer_id) is link:
            del self._conns[link.peer_id]

    async def _peer_read_loop(self, link: _PeerLink,
                              reader: asyncio.StreamReader) -> None:
        decoder = FrameDecoder()
        try:
            while True:
                data = await reader.read(_READ_CHUNK)
                if not data:
                    break
                for frame in decoder.feed(data):
                    self._process_peer_frame(link, frame)
        except WireError as exc:
            self._log(f"dropping corrupt link to {link.peer_id}: {exc}")
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            self._link_closed(link)

    def _process_peer_frame(self, link: _PeerLink, frame: dict) -> None:
        t = frame.get("t")
        if t == "msg" or t == "direct":
            self.transport.deliver_wire(
                frame.get("src"), self.node_id,
                message_from_wire(frame["m"]),
            )
        elif t == "welcome":
            for member in frame.get("members", ()):
                if not isinstance(member, str) or member == self.node_id:
                    continue
                self._add_member(member)
                if member not in self._conns and member not in self._dialing:
                    self._ensure_link(member)
            link.welcomed.set()
        elif t == "joined":
            member = frame.get("id")
            if isinstance(member, str):
                self._add_member(member)
        elif t == "leaving":
            member = frame.get("id")
            if isinstance(member, str):
                self._remove_member(member, "leave")
        elif t == "hello":
            # A re-hello on an established link: answer with the current
            # member list (harmless, keeps the handshake idempotent).
            self._welcome(link, frame)
        else:
            raise WireError(f"unknown peer frame type {t!r}")

    def _welcome(self, link: _PeerLink, hello: dict) -> None:
        peer_id = hello.get("id")
        if not isinstance(peer_id, str) or not peer_id:
            raise WireError(f"hello frame without a valid id: {hello!r}")
        fresh = self._add_member(peer_id)
        link.send_json({
            "t": "welcome",
            "id": self.node_id,
            "members": sorted(self.members),
        })
        if fresh:
            for other_id, other in list(self._conns.items()):
                if other_id != peer_id:
                    other.send_json({"t": "joined", "id": peer_id})
            self._log(f"member {peer_id} joined; "
                      f"members={sorted(self.members)}")

    # ------------------------------------------------------------------
    # Inbound connections (peers and clients share the listener)
    # ------------------------------------------------------------------

    async def _on_connection(self, reader: asyncio.StreamReader,
                             writer: asyncio.StreamWriter) -> None:
        decoder = FrameDecoder()
        link: Optional[_PeerLink] = None
        stop_after = False
        try:
            while not stop_after:
                data = await reader.read(_READ_CHUNK)
                if not data:
                    break
                for frame in decoder.feed(data):
                    if link is not None:
                        self._process_peer_frame(link, frame)
                    elif frame.get("t") == "hello":
                        peer_id = frame.get("id")
                        if not isinstance(peer_id, str) or not peer_id:
                            raise WireError(
                                f"hello frame without a valid id: {frame!r}"
                            )
                        link = _PeerLink(peer_id, writer, self.config.codec)
                        self._register_link(link)
                        self._welcome(link, frame)
                    else:
                        stop_after = await self._handle_client_frame(
                            frame, writer
                        )
                        if stop_after:
                            break
        except WireError as exc:
            self._log(f"dropping corrupt connection: {exc}")
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            if link is not None:
                self._link_closed(link)
            else:
                with contextlib.suppress(Exception):
                    writer.close()
        if stop_after:
            self.request_stop()

    # ------------------------------------------------------------------
    # Client operations
    # ------------------------------------------------------------------

    async def _handle_client_frame(self, frame: dict,
                                   writer: asyncio.StreamWriter) -> bool:
        """Serve one client request; returns True for a stop request."""
        t = frame.get("t")
        stop = False
        try:
            if t == "put":
                reply = await self._client_put(frame)
            elif t == "get":
                reply = await self._client_get(frame)
            elif t == "info":
                reply = self._client_info()
            elif t == "audit":
                reply = self._client_audit()
            elif t == "stop":
                reply = {"t": "ok", "id": self.node_id}
                stop = True
            else:
                reply = {"t": "error",
                         "error": f"unknown request type {t!r}"}
        except Exception as exc:  # a bad request must not kill the node
            reply = {"t": "error", "error": f"{type(exc).__name__}: {exc}"}
        writer.write(encode_frame(reply, self.config.codec))
        await writer.drain()
        return stop

    async def _client_put(self, frame: dict) -> dict:
        key = frame["key"]
        message = ReplicaMessage(
            event=ReplicaEvent(frame.get("event", "birth")),
            key=key,
            replica_id=frame["replica_id"],
            address=frame.get("address", ""),
            lifetime=float(frame.get("lifetime", 300.0)),
        )
        authority = self.overlay.authority(key)
        if authority != self.node_id:
            # A replica announcement is fire-and-forget control traffic
            # with no retry of its own, so unlike protocol sends (whose
            # loss the recovery machinery absorbs) it must not race a
            # link that is still dialing: wait for the connection.
            link = await self._ensure_link(authority)
            if link is None:
                return {"t": "error", "authority": authority,
                        "error": f"authority {authority} is unreachable"}
        self.transport.send_direct(authority, message)
        return {"t": "ok", "authority": authority}

    async def _client_get(self, frame: dict) -> dict:
        key = frame["key"]
        timeout = float(frame.get("timeout", 5.0))
        node = self.node
        loop = self.clock.loop
        deadline = loop.time() + timeout
        hit = node.post_local_query(key)
        last_query = loop.time()
        state = node.cache.get_or_create(key)
        while True:
            now = self.clock.now
            if node._is_authority(key, state):
                entries = list(
                    node.authority_index.fresh_entries(key, now)
                )
                if entries:
                    break
                # The authoritative index is empty: keep polling — a
                # birth may still be in flight — until the deadline
                # reports an authoritative miss.
            elif state.has_fresh(now):
                entries = list(state.fresh_entries(now))
                break
            remaining = deadline - loop.time()
            if remaining <= 0:
                return {"t": "result", "ok": False, "hit": False,
                        "key": key, "entries": [],
                        "error": f"no fresh entries within {timeout}s"}
            if loop.time() - last_query >= 1.0:
                # Re-post past the PFU timeout so a query frame lost to
                # a mid-dial window gets re-pushed upstream.
                node.post_local_query(key)
                last_query = loop.time()
            await asyncio.sleep(min(0.02, max(remaining, 0.001)))
        return {
            "t": "result", "ok": True, "hit": hit, "key": key,
            "entries": [entry_to_wire(e) for e in entries],
            "authority": self.overlay.authority(key),
        }

    def _client_info(self) -> dict:
        checker = self.checker
        return {
            "t": "info",
            "id": self.node_id,
            "members": sorted(self.members),
            "connections": sorted(self._conns),
            "mode": self.config.mode,
            "transport": {
                "sent": self.transport.sent,
                "sent_direct": self.transport.sent_direct,
                "received": self.transport.received,
                "delivered": self.transport.delivered,
                "dropped": self.transport.dropped,
            },
            "recovery": self.metrics.recovery_report(),
            "violations": (
                len(checker.violations) if checker is not None else None
            ),
        }

    def _client_audit(self) -> dict:
        checker = self.checker
        if checker is None:
            return {"t": "audit", "ok": None, "violations": [],
                    "error": "invariants disabled on this node"}
        before = len(checker.violations)
        checker.check_quiescent()
        fresh = checker.violations[before:]
        return {
            "t": "audit",
            "ok": not checker.violations,
            "violations": [str(v) for v in checker.violations],
            "fresh_violations": [str(v) for v in fresh],
            "audits_run": checker.audits_run,
        }

    # ------------------------------------------------------------------
    # Misc
    # ------------------------------------------------------------------

    def _log(self, text: str) -> None:
        if not self.config.quiet:
            prefix = self.node_id or f"{self.config.host}:?"
            print(f"[{prefix}] {text}", flush=True)


def _immediate(value):
    """An awaitable resolving instantly to ``value`` (link cache hits)."""
    future = asyncio.get_event_loop().create_future()
    future.set_result(value)
    return future


async def run_node(config: LiveNodeConfig,
                   install_signals: bool = True) -> LiveNode:
    """Start a node, serve until stopped, return the (stopped) node."""
    import signal

    node = LiveNode(config)
    await node.start()
    if install_signals:
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGINT, signal.SIGTERM):
            with contextlib.suppress(NotImplementedError, RuntimeError):
                loop.add_signal_handler(signum, node.request_stop)
    await node.serve_forever()
    return node


def serve(config: LiveNodeConfig) -> int:
    """Blocking entry point used by ``repro node serve|join``."""
    try:
        asyncio.run(run_node(config))
    except ConnectionError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except KeyboardInterrupt:  # pragma: no cover - signal-handler race
        pass
    return 0
