"""Socket-backed implementation of the transport seam.

One :class:`LiveTransport` serves one daemon process.  It mirrors the
simulator transport's surface and accounting exactly (see
:mod:`repro.net.seam`): hop counters increment at send time, observers
fire once per overlay-hop send before anything can drop the message,
``send_direct`` is invisible to observers, and unreachable destinations
are counted in ``dropped`` — delivery to a peer that departed while the
frame was in flight looks identical in both worlds.

The transport itself owns no sockets.  Destinations resolve through a
*router* (the owning :class:`~repro.net.daemon.LiveNode`), which needs
three methods::

    send_wire(src, dst, message, direct) -> bool   # enqueue a frame
    is_peer(node_id) -> bool                       # known cluster member
    call_soon(fn, *args)                           # next loop iteration

Local deliveries — the daemon's own node, or a second handler registered
in-process (tests) — are deferred with ``call_soon`` rather than called
inline, mirroring the simulator's schedule-then-deliver ordering: a
handler never runs inside the stack frame of the handler that sent to
it.

One counter the simulator lacks: :attr:`received`, incremented for every
frame arriving off the wire.  A single process only ever sees its own
half of the cluster's traffic, so the invariant checker's conservation
audit adds ``received`` to the offered side (the sending process charged
its ``sent``) — without it, any node that receives more than it sends
would look like it manufactured messages.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.sim.network import Message, MessageHandler, NodeId, SendObserver


class LiveTransport:
    """The simulator Transport's seam, over real connections."""

    def __init__(self, clock, router):
        self._clock = clock
        self._router = router
        self._handlers: Dict[NodeId, MessageHandler] = {}
        self._receivers: Dict[NodeId, Callable] = {}
        self._send_observers: List[SendObserver] = []
        self._hop_collector = None
        self.sent = 0
        self.sent_direct = 0
        self.delivered = 0
        self.dropped = 0
        #: Frames that arrived off the wire for this process (offered by
        #: a *remote* sender's counters; see module docstring).
        self.received = 0
        # Fault counters exist for seam parity and the checker's
        # conservation arithmetic; a live TCP transport never loses,
        # duplicates or reorders within a connection.
        self.blocked = 0
        self.lost = 0
        self.duplicated = 0
        self.reordered = 0

    # ------------------------------------------------------------------
    # Registry
    # ------------------------------------------------------------------

    def register(self, node_id: NodeId, handler: MessageHandler) -> None:
        self._handlers[node_id] = handler
        self._receivers[node_id] = handler.receive

    def unregister(self, node_id: NodeId) -> None:
        self._handlers.pop(node_id, None)
        self._receivers.pop(node_id, None)

    def is_registered(self, node_id: NodeId) -> bool:
        """Local handler, or a live peer of the cluster."""
        return node_id in self._handlers or self._router.is_peer(node_id)

    # ------------------------------------------------------------------
    # Observation
    # ------------------------------------------------------------------

    def add_send_observer(self, observer: SendObserver) -> None:
        self._send_observers.append(observer)

    def attach_metrics(self, collector) -> None:
        if self._hop_collector is not None:
            raise RuntimeError("a metrics collector is already attached")
        self._hop_collector = collector

    # ------------------------------------------------------------------
    # Sending (overlay hops)
    # ------------------------------------------------------------------

    def _count_hop(self, message: Message, count: int = 1) -> None:
        collector = self._hop_collector
        if collector is None:
            return
        kind = message.kind
        if kind == "update":
            collector._update_hops[message.update_type] += count
        elif kind == "query":
            collector.query_hops += count
        elif kind == "clear_bit":
            collector.clear_bit_hops += count

    def send(self, src: NodeId, dst: NodeId, message: Message) -> None:
        if src == dst:
            raise ValueError(f"node {src!r} attempted to send to itself")
        self.sent += 1
        message.hops += 1
        self._count_hop(message)
        for observer in self._send_observers:
            observer(src, dst, message)
        self._dispatch(src, dst, message, direct=False)

    def send_fanout(self, src: NodeId, dsts, message: Message) -> None:
        count = len(dsts)
        self.sent += count
        hops = message.hops + 1
        self._count_hop(message, count)
        fork = message.fork
        for dst in dsts:
            envelope = fork()
            envelope.hops = hops
            for observer in self._send_observers:
                observer(src, dst, envelope)
            self._dispatch(src, dst, envelope, direct=False)

    def send_direct(self, dst: NodeId, message: Message, delay: float = 0.0,
                    src: NodeId = None) -> None:
        """Off-overlay control traffic: no observers, no hop count."""
        self.sent_direct += 1
        if delay > 0:
            self._clock.schedule(delay, self._dispatch, src, dst, message,
                                 True)
        else:
            self._dispatch(src, dst, message, direct=True)

    def _dispatch(self, src: NodeId, dst: NodeId, message: Message,
                  direct: bool) -> None:
        if dst in self._receivers:
            # In-process destination: defer one loop turn so a handler
            # never re-enters from inside the sending handler's frame.
            self._router.call_soon(self._deliver_local, src, dst, message)
            return
        if not self._router.send_wire(src, dst, message, direct):
            self.dropped += 1

    # ------------------------------------------------------------------
    # Delivery (loopback and wire-inbound)
    # ------------------------------------------------------------------

    def _deliver_local(self, src: NodeId, dst: NodeId,
                       message: Message) -> None:
        receive = self._receivers.get(dst)
        if receive is None:
            self.dropped += 1
            return
        self.delivered += 1
        receive(message, src)

    def deliver_wire(self, src: Optional[NodeId], dst: NodeId,
                     message: Message) -> None:
        """Hand a frame that arrived off the wire to its local handler."""
        self.received += 1
        receive = self._receivers.get(dst)
        if receive is None:
            self.dropped += 1
            return
        self.delivered += 1
        receive(message, src)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"LiveTransport(sent={self.sent}, received={self.received}, "
            f"delivered={self.delivered}, dropped={self.dropped})"
        )
