"""Wall-clock time and asyncio timers behind the simulator's clock seam.

Core protocol code reads ``sim.now`` and calls ``sim.schedule(delay, fn,
*args)``; nothing else.  :class:`LiveClock` satisfies exactly that
surface over a running asyncio event loop, so
:class:`~repro.core.node.CupNode`,
:class:`~repro.core.recovery.RecoveryManager`,
:class:`~repro.core.keepalive.KeepAliveMonitor` and
:class:`~repro.sim.process.PeriodicProcess` run unmodified in a live
daemon.

Two clocks, deliberately:

* ``now`` is **wall time** (``time.time()``): index-entry lifetimes and
  update expiries must mean the same instant on every node of a
  cluster, and wall clocks are the only thing distinct hosts share.
* ``schedule`` rides the loop's **monotonic** clock
  (``loop.call_later``): relative timers — keep-alive periods, NACK
  backoff — must not stretch or fire early when NTP steps the wall
  clock.

The gap between the two is visible only to code that computes an
absolute deadline from ``now`` and then measures it with a timer; CUP's
core does neither (deadlines are compared against ``now``, timers are
always relative).
"""

from __future__ import annotations

import asyncio
import time
from typing import Optional


class LiveClock:
    """The :class:`~repro.sim.engine.Simulator` clock surface, live.

    ``schedule`` returns the loop's :class:`asyncio.TimerHandle`, whose
    ``cancel()`` matches the simulator Event's — the only method core
    timer users call on a handle.
    """

    __slots__ = ("_loop",)

    def __init__(self, loop: Optional[asyncio.AbstractEventLoop] = None):
        self._loop = loop

    @property
    def loop(self) -> asyncio.AbstractEventLoop:
        loop = self._loop
        if loop is None:
            loop = self._loop = asyncio.get_event_loop()
        return loop

    @property
    def now(self) -> float:
        return time.time()

    def schedule(self, delay: float, fn, *args) -> asyncio.TimerHandle:
        if delay < 0:
            raise ValueError(f"negative delay: {delay}")
        return self.loop.call_later(delay, fn, *args)

    def call_soon(self, fn, *args) -> asyncio.Handle:
        """Run ``fn(*args)`` on the next loop iteration."""
        return self.loop.call_soon(fn, *args)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"LiveClock(now={self.now:.3f})"
