"""Length-prefixed wire codec for CUP messages.

Every frame on a live connection is::

    +----------------+-----------+------------------+
    | payload length | codec tag |     payload      |
    |  4 bytes, !I   | 1 byte    |  `length` bytes  |
    +----------------+-----------+------------------+

The payload is one JSON object (codec tag 1) or one msgpack map (codec
tag 2, registered only when the optional ``msgpack`` package is
importable — the protocol needs no negotiation because every frame
carries its own tag).  Lengths are big-endian and bounded by
:data:`MAX_FRAME_BYTES`; a decoder seeing a longer length, or an unknown
codec tag, raises :class:`WireError` as soon as the 5-byte header is
complete — garbage prefixes are detected before the peer can make us
buffer an arbitrary amount.

On top of framing, this module maps every message family of
:mod:`repro.core.messages` (plus the keep-alive heartbeat) to and from
plain dicts: :func:`message_to_wire` / :func:`message_from_wire`.  The
mapping is total and lossless — ``hops``, ``hop_seq`` and ``route`` ride
along, so the recovery layer's gap detection works over real sockets
exactly as it does in the simulator.  Tuples become JSON lists in
flight and tuples again on arrival; ``None`` stays ``null`` (a CUP
query's ``path=None`` is semantically distinct from an empty chain).
"""

from __future__ import annotations

import json
import struct
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.core.entry import IndexEntry
from repro.core.keepalive import KeepAliveMessage
from repro.core.messages import (
    ClearBitMessage,
    NackMessage,
    QueryMessage,
    ReplicaEvent,
    ReplicaMessage,
    UpdateMessage,
    UpdateType,
)
from repro.sim.network import Message

try:  # pragma: no cover - exercised only where msgpack is installed
    import msgpack  # type: ignore
except ImportError:  # pragma: no cover - the common container
    msgpack = None

_HEADER = struct.Struct("!IB")
HEADER_BYTES = _HEADER.size

#: Ceiling on one frame's payload.  A first-time update carrying every
#: fresh replica of a hot key stays far below this; anything larger is a
#: corrupt or hostile length prefix.
MAX_FRAME_BYTES = 8 * 1024 * 1024


class WireError(RuntimeError):
    """Malformed frame, unknown codec, or undecodable message."""


# ----------------------------------------------------------------------
# Codecs
# ----------------------------------------------------------------------

CODEC_JSON = 1
CODEC_MSGPACK = 2


def _json_encode(obj: dict) -> bytes:
    return json.dumps(obj, separators=(",", ":")).encode("utf-8")


def _json_decode(payload: bytes) -> dict:
    return json.loads(payload.decode("utf-8"))


_ENCODERS: Dict[int, Callable[[dict], bytes]] = {CODEC_JSON: _json_encode}
_DECODERS: Dict[int, Callable[[bytes], dict]] = {CODEC_JSON: _json_decode}
_CODEC_IDS: Dict[str, int] = {"json": CODEC_JSON}

if msgpack is not None:  # pragma: no cover - optional dependency
    _ENCODERS[CODEC_MSGPACK] = lambda obj: msgpack.packb(obj)
    _DECODERS[CODEC_MSGPACK] = lambda payload: msgpack.unpackb(payload)
    _CODEC_IDS["msgpack"] = CODEC_MSGPACK


def available_codecs() -> Tuple[str, ...]:
    """Codec names encodable in this process (``json`` always)."""
    return tuple(sorted(_CODEC_IDS))


def resolve_codec(name: str) -> int:
    """Codec name -> wire tag; raises :class:`WireError` when absent."""
    try:
        return _CODEC_IDS[name]
    except KeyError:
        raise WireError(
            f"codec {name!r} is not available (have: "
            f"{', '.join(available_codecs())})"
        ) from None


# ----------------------------------------------------------------------
# Framing
# ----------------------------------------------------------------------


def encode_frame(obj: dict, codec: str = "json") -> bytes:
    """One complete frame: header + encoded payload."""
    tag = resolve_codec(codec)
    payload = _ENCODERS[tag](obj)
    if len(payload) > MAX_FRAME_BYTES:
        raise WireError(
            f"frame payload of {len(payload)} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte limit"
        )
    return _HEADER.pack(len(payload), tag) + payload


class FrameDecoder:
    """Incremental frame parser over an arbitrary byte-chunk stream.

    Feed it whatever the socket hands you; it returns every frame that
    completed.  State survives partial headers and partial payloads, so
    byte-at-a-time delivery decodes identically to one big read.  Any
    :class:`WireError` poisons the stream — a length-prefixed protocol
    cannot resynchronize after corruption, so the owning connection must
    be dropped.
    """

    __slots__ = ("_buffer", "_max_frame")

    def __init__(self, max_frame: int = MAX_FRAME_BYTES):
        self._buffer = bytearray()
        self._max_frame = max_frame

    @property
    def buffered(self) -> int:
        """Bytes held waiting for a frame to complete."""
        return len(self._buffer)

    def feed(self, data: bytes) -> List[dict]:
        """Absorb ``data``; return the frames it completed (in order)."""
        buffer = self._buffer
        buffer.extend(data)
        frames: List[dict] = []
        while True:
            if len(buffer) < HEADER_BYTES:
                return frames
            length, tag = _HEADER.unpack_from(buffer)
            # Validate the header the moment it is complete: a garbage
            # prefix fails here instead of stalling the stream while we
            # "wait" for gigabytes that will never arrive.
            if length > self._max_frame:
                raise WireError(
                    f"frame length {length} exceeds the "
                    f"{self._max_frame}-byte limit (corrupt stream?)"
                )
            decoder = _DECODERS.get(tag)
            if decoder is None:
                raise WireError(f"unknown codec tag {tag} (corrupt stream?)")
            if len(buffer) < HEADER_BYTES + length:
                return frames
            payload = bytes(buffer[HEADER_BYTES:HEADER_BYTES + length])
            del buffer[:HEADER_BYTES + length]
            try:
                obj = decoder(payload)
            except Exception as exc:
                raise WireError(
                    f"undecodable frame payload ({exc})"
                ) from exc
            if not isinstance(obj, dict):
                raise WireError(
                    f"frame payload must be a map, got {type(obj).__name__}"
                )
            frames.append(obj)


# ----------------------------------------------------------------------
# Index entries
# ----------------------------------------------------------------------


def entry_to_wire(entry: IndexEntry) -> dict:
    return {
        "key": entry.key,
        "replica_id": entry.replica_id,
        "address": entry.address,
        "lifetime": entry.lifetime,
        "timestamp": entry.timestamp,
        "sequence": entry.sequence,
    }


def entry_from_wire(data: dict) -> IndexEntry:
    return IndexEntry(
        key=data["key"],
        replica_id=data["replica_id"],
        address=data["address"],
        lifetime=float(data["lifetime"]),
        timestamp=float(data["timestamp"]),
        sequence=int(data["sequence"]),
    )


# ----------------------------------------------------------------------
# Messages
# ----------------------------------------------------------------------


def _tuple_or_none(value) -> Optional[tuple]:
    return None if value is None else tuple(value)


def message_to_wire(message: Message) -> dict:
    """Total mapping from every transportable message to a plain dict."""
    kind = message.kind
    out: Dict[str, Any] = {"kind": kind, "hops": message.hops}
    if kind == "query":
        out["key"] = message.key
        out["path"] = None if message.path is None else list(message.path)
    elif kind == "update":
        out["key"] = message.key
        out["type"] = int(message.update_type)
        out["entries"] = [entry_to_wire(e) for e in message.entries]
        out["replica_id"] = message.replica_id
        out["issued_at"] = message.issued_at
        out["route"] = None if message.route is None else list(message.route)
        out["hop_seq"] = message.hop_seq
    elif kind == "clear_bit":
        out["key"] = message.key
    elif kind == "nack":
        out["key"] = message.key
        out["missing"] = list(message.missing)
    elif kind == "keepalive":
        pass
    elif kind == "replica":
        out["event"] = message.event.value
        out["key"] = message.key
        out["replica_id"] = message.replica_id
        out["address"] = message.address
        out["lifetime"] = message.lifetime
    else:
        raise WireError(f"unserializable message kind: {kind!r}")
    return out


def message_from_wire(data: dict) -> Message:
    """Inverse of :func:`message_to_wire`; raises :class:`WireError`."""
    try:
        kind = data["kind"]
        if kind == "query":
            message: Message = QueryMessage(
                data["key"], path=_tuple_or_none(data["path"])
            )
        elif kind == "update":
            message = UpdateMessage(
                key=data["key"],
                update_type=UpdateType(int(data["type"])),
                entries=tuple(
                    entry_from_wire(e) for e in data["entries"]
                ),
                replica_id=data["replica_id"],
                issued_at=float(data["issued_at"]),
                route=_tuple_or_none(data["route"]),
            )
            hop_seq = data["hop_seq"]
            message.hop_seq = None if hop_seq is None else int(hop_seq)
        elif kind == "clear_bit":
            message = ClearBitMessage(data["key"])
        elif kind == "nack":
            message = NackMessage(
                data["key"], tuple(int(s) for s in data["missing"])
            )
        elif kind == "keepalive":
            message = KeepAliveMessage()
        elif kind == "replica":
            message = ReplicaMessage(
                event=ReplicaEvent(data["event"]),
                key=data["key"],
                replica_id=data["replica_id"],
                address=data["address"],
                lifetime=float(data["lifetime"]),
            )
        else:
            raise WireError(f"unknown message kind: {kind!r}")
        message.hops = int(data["hops"])
    except WireError:
        raise
    except (KeyError, TypeError, ValueError) as exc:
        raise WireError(
            f"malformed {data.get('kind', '?')!r} message: {exc}"
        ) from exc
    return message
