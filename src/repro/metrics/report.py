"""Plain-text table rendering for experiment reports.

The benchmark harnesses print tables mirroring the paper's layout (total
cost with the standard-caching-normalized value in parentheses, etc.).
Rendering is deliberately dependency-free: aligned monospace columns that
read well in a terminal and in committed EXPERIMENTS.md transcripts.
"""

from __future__ import annotations

import math
from typing import Any, List, Sequence


def format_float(value: float, digits: int = 2) -> str:
    """Format a float compactly; integers lose the trailing zeros."""
    if value is None or (isinstance(value, float) and math.isnan(value)):
        return "-"
    if isinstance(value, float) and math.isinf(value):
        return "inf"
    if float(value) == int(value) and abs(value) < 1e15:
        return str(int(value))
    return f"{value:.{digits}f}"

def format_ratio(value: float, baseline: float, digits: int = 2) -> str:
    """Paper-style "55905 (1.00)" cell: absolute plus normalized."""
    absolute = format_float(value, digits=0)
    if baseline == 0:
        return f"{absolute} (-)"
    return f"{absolute} ({value / baseline:.{digits}f})"


class Table:
    """A titled, aligned, monospace table."""

    def __init__(self, title: str, headers: Sequence[str]):
        self.title = title
        self.headers = list(headers)
        self.rows: List[List[str]] = []

    def add_row(self, *cells: Any) -> None:
        """Append a row; cells are stringified (floats compactly)."""
        if len(cells) != len(self.headers):
            raise ValueError(
                f"expected {len(self.headers)} cells, got {len(cells)}"
            )
        self.rows.append([
            format_float(c) if isinstance(c, float) else str(c) for c in cells
        ])

    def render(self, indent: str = "") -> str:
        """The table as a string (title, rule, header, rows)."""
        widths = [len(h) for h in self.headers]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))

        def line(cells: Sequence[str]) -> str:
            return indent + "  ".join(
                cell.ljust(widths[i]) for i, cell in enumerate(cells)
            ).rstrip()

        rule = indent + "-" * (sum(widths) + 2 * (len(widths) - 1))
        out = [indent + self.title, rule, line(self.headers), rule]
        out.extend(line(row) for row in self.rows)
        out.append(rule)
        return "\n".join(out)

    def __str__(self) -> str:
        return self.render()


def render_series(
    title: str,
    x_label: str,
    xs: Sequence[float],
    series: dict[str, Sequence[float]],
    y_digits: int = 0,
) -> str:
    """Render figure data (x column + one column per named series).

    Used by the figure-reproduction benches: the paper's figures are
    line plots; we print the underlying series so the shape (monotone
    trends, crossovers, turning points) is inspectable in text.
    """
    table = Table(title, [x_label, *series.keys()])
    for i, x in enumerate(xs):
        cells: List[Any] = [format_float(float(x))]
        for values in series.values():
            v = values[i]
            cells.append(format_float(float(v), digits=y_digits) if v is not None else "-")
        table.add_row(*cells)
    return table.render()
