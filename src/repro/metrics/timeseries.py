"""Windowed time-series sampling of simulation metrics.

The paper's tables report whole-run aggregates, but several of its
arguments are about *dynamics*: the Up-And-Down experiment's recovery
after each fault episode, the flash crowd's burst, the clear-bit
teardown after the query phase.  A :class:`TimeSeriesSampler` snapshots
chosen quantities on a fixed period so examples and analyses can plot
cost over time.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Sequence

from repro.sim.engine import Simulator
from repro.sim.process import PeriodicProcess

Probe = Callable[[], float]


class TimeSeriesSampler:
    """Periodic snapshots of named probes.

    Parameters
    ----------
    sim:
        The simulator whose clock drives sampling.
    period:
        Seconds between samples.
    probes:
        Mapping of series name to a zero-argument callable returning the
        current value (typically a closure over a metrics counter).

    Notes
    -----
    Counters are cumulative; :meth:`deltas` converts a series to
    per-window increments, which is what rate plots want.
    """

    def __init__(self, sim: Simulator, period: float, probes: Dict[str, Probe]):
        if period <= 0:
            raise ValueError(f"period must be positive, got {period}")
        if not probes:
            raise ValueError("need at least one probe")
        self._sim = sim
        self.period = period
        self._probes = dict(probes)
        self.times: List[float] = []
        self.samples: Dict[str, List[float]] = {name: [] for name in probes}
        self._process = PeriodicProcess(sim, period, self._sample, phase=0.0)

    def stop(self) -> None:
        """Stop sampling (existing samples are retained)."""
        self._process.stop()

    def _sample(self) -> None:
        self.times.append(self._sim.now)
        for name, probe in self._probes.items():
            self.samples[name].append(float(probe()))

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------

    def series(self, name: str) -> List[float]:
        """The raw cumulative samples for ``name``."""
        return list(self.samples[name])

    def deltas(self, name: str) -> List[float]:
        """Per-window increments of a cumulative series."""
        values = self.samples[name]
        return [b - a for a, b in zip(values, values[1:])]

    def window_of(self, time: float) -> int:
        """Index of the sample window containing ``time``."""
        if not self.times:
            raise ValueError("no samples recorded")
        for i, t in enumerate(self.times):
            if time < t:
                return max(0, i - 1)
        return len(self.times) - 1

    def peak_window(self, name: str) -> int:
        """Index of the window with the largest increment of ``name``."""
        deltas = self.deltas(name)
        if not deltas:
            raise ValueError("need at least two samples")
        return max(range(len(deltas)), key=deltas.__getitem__)

    def render(self, names: Sequence[str], width: int = 60) -> str:
        """A quick ASCII sparkline block for terminal inspection."""
        blocks = " .:-=+*#%@"
        out = []
        for name in names:
            deltas = self.deltas(name)
            if not deltas:
                out.append(f"{name:>24s} | (no data)")
                continue
            step = max(1, len(deltas) // width)
            bucketed = [
                sum(deltas[i: i + step]) / step
                for i in range(0, len(deltas), step)
            ]
            top = max(bucketed) or 1.0
            line = "".join(
                blocks[min(len(blocks) - 1, int(v / top * (len(blocks) - 1)))]
                for v in bucketed
            )
            out.append(f"{name:>24s} | {line}")
        return "\n".join(out)
