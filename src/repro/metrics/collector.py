"""Raw counters and derived cost quantities.

One :class:`MetricsCollector` instance observes one simulation run.  Hop
counters attach to the transport (one observer call per overlay-hop
send); protocol event counters are incremented directly by node logic.
``summary()`` freezes everything into an immutable
:class:`MetricsSummary` which the experiment harnesses consume.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Dict

from repro.core.messages import UpdateType
from repro.sim.network import Message, NodeId


class MetricsCollector:
    """Counters for one simulation run.

    Attach to a transport with
    ``transport.add_send_observer(collector.on_send)``.
    """

    def __init__(self) -> None:
        # --- hop counters (one increment per overlay-hop send) --------
        # Update hops live in a flat list indexed by the UpdateType
        # value (first-time=0, delete=1, refresh=2, append=3): the send
        # observer fires once per overlay hop, and a list index plus an
        # integer add beats the former dict-of-dicts bookkeeping.  The
        # dict-shaped ``update_hops`` view is derived on demand.
        self.query_hops = 0
        self._update_hops = [0, 0, 0, 0]
        self.clear_bit_hops = 0
        # --- query outcome counters (posting-node view) ---------------
        self.queries_posted = 0
        self.local_hits = 0
        self.misses = 0
        self.first_time_misses = 0
        self.freshness_misses = 0
        self.coalesced_queries = 0
        self.answers_delivered = 0
        # --- intermediate node events ----------------------------------
        self.neighbor_queries = 0
        self.cache_answers = 0
        self.authority_answers = 0
        self.queries_forwarded = 0
        # --- update pipeline events ------------------------------------
        self.updates_suppressed = 0
        self.updates_dropped_expired = 0
        self.updates_stale_discarded = 0
        self.clear_bits_sent = 0
        # --- justification accounting (§3.1) ---------------------------
        self.justified_updates = 0
        self.unjustified_updates = 0
        # --- substrate events -------------------------------------------
        self.replica_births = 0
        self.replica_refreshes = 0
        self.replica_deaths = 0
        self.failure_detections = 0
        # --- unreliable-transport recovery (repro.core.recovery) --------
        # Incremented only when nodes carry a RecoveryManager
        # (CupConfig.reliable_transport=False); all zero — and absent
        # from MetricsSummary — on the default reliable path, so golden
        # pins are untouched.  Read them via recovery_report().
        self.gaps_detected = 0
        self.nacks_sent = 0
        self.recovery_retries = 0
        self.recovered_updates = 0
        self.degraded_reads = 0
        self.degraded_repromotions = 0
        self.duplicates_suppressed = 0
        # --- live-node durability and connection resilience --------------
        # Incremented only by the asyncio daemon (repro.net.daemon) and
        # its node store; structurally zero on every simulator path and
        # absent from MetricsSummary, so golden pins are untouched.
        # Read them via livenode_report().
        self.state_snapshots = 0
        self.state_snapshot_failures = 0
        self.state_restored_keys = 0
        self.dial_failures = 0
        self.dial_retries = 0
        self.outbox_overflows = 0
        self.peers_suspected = 0
        self.peers_declared_dead = 0
        # --- latency (seconds, extension beyond the paper's hop metric)
        self.answer_delay_total = 0.0
        self.answer_delay_count = 0
        # --- setup-cost accounting (wall clock, *not* part of
        # MetricsSummary: wall times vary run to run and would break the
        # byte-identical determinism referee).  Routing-table build time
        # covers overlay construction plus every lazy per-epoch rebuild
        # of derived routing state (finger tables, sorted member arrays),
        # so sweep and perf reports can separate setup cost from
        # steady-state throughput.
        self.routing_build_seconds = 0.0
        self.routing_table_builds = 0

    # ------------------------------------------------------------------
    # Transport observer
    # ------------------------------------------------------------------

    def on_send(self, src: NodeId, dst: NodeId, message: Message) -> None:
        """Classify one overlay-hop send (wired as a transport observer).

        The hottest observer in the system — once per overlay hop — so
        it is a branch over interned kind strings into flat integer
        slots, no dispatch dict and no per-kind method frame.  Updates
        dominate every CUP workload and are tested first.
        """
        kind = message.kind
        if kind == "update":
            self._update_hops[message.update_type] += 1
        elif kind == "query":
            self.query_hops += 1
        elif kind == "clear_bit":
            self.clear_bit_hops += 1

    @property
    def update_hops(self) -> Dict[UpdateType, int]:
        """Per-type update hop counts (derived view of the flat slots)."""
        hops = self._update_hops
        return {t: hops[t] for t in UpdateType}

    # ------------------------------------------------------------------
    # Setup-cost accounting
    # ------------------------------------------------------------------

    def setup_cost_report(self) -> Dict[str, float]:
        """Setup-cost counters, separate from the frozen run summary."""
        return {
            "routing_build_seconds": self.routing_build_seconds,
            "routing_table_builds": self.routing_table_builds,
        }

    def recovery_report(self) -> Dict[str, int]:
        """Unreliable-transport recovery counters, as a plain dict.

        Deliberately outside :class:`MetricsSummary`: the summary's
        field set is pinned by the byte-identical golden referee, and
        these counters are structurally zero on the reliable path.
        """
        return {
            "gaps_detected": self.gaps_detected,
            "nacks_sent": self.nacks_sent,
            "recovery_retries": self.recovery_retries,
            "recovered_updates": self.recovered_updates,
            "degraded_reads": self.degraded_reads,
            "degraded_repromotions": self.degraded_repromotions,
            "duplicates_suppressed": self.duplicates_suppressed,
        }

    def livenode_report(self) -> Dict[str, int]:
        """Daemon durability/resilience counters, as a plain dict.

        Like :meth:`recovery_report`, deliberately outside
        :class:`MetricsSummary`: these exist only on the live stack.
        """
        return {
            "state_snapshots": self.state_snapshots,
            "state_snapshot_failures": self.state_snapshot_failures,
            "state_restored_keys": self.state_restored_keys,
            "dial_failures": self.dial_failures,
            "dial_retries": self.dial_retries,
            "outbox_overflows": self.outbox_overflows,
            "peers_suspected": self.peers_suspected,
            "peers_declared_dead": self.peers_declared_dead,
        }

    # ------------------------------------------------------------------
    # Invariant support
    # ------------------------------------------------------------------

    def audit_identities(self) -> list:
        """The cumulative cost-balance identities as (name, lhs, rhs).

        Consumed by :class:`repro.invariants.checker.InvariantChecker`:
        each pair must be equal at every simulation instant, because the
        derived costs are definitions over the raw counters — a mismatch
        means a counter was bypassed or double-counted.
        """
        return [
            (
                "miss_cost = query_hops + first_time_update_hops",
                self.miss_cost,
                self.query_hops + self.first_time_update_hops,
            ),
            (
                "overhead_cost = maintenance_update_hops + clear_bit_hops",
                self.overhead_cost,
                self.maintenance_update_hops + self.clear_bit_hops,
            ),
            (
                "total_cost = miss_cost + overhead_cost",
                self.total_cost,
                self.miss_cost + self.overhead_cost,
            ),
            (
                "queries_posted = local_hits + misses",
                self.queries_posted,
                self.local_hits + self.misses,
            ),
            (
                "misses = first_time_misses + freshness_misses",
                self.misses,
                self.first_time_misses + self.freshness_misses,
            ),
        ]

    # ------------------------------------------------------------------
    # Derived quantities (§3.3 definitions)
    # ------------------------------------------------------------------

    @property
    def first_time_update_hops(self) -> int:
        return self._update_hops[UpdateType.FIRST_TIME]

    @property
    def maintenance_update_hops(self) -> int:
        """Refresh + delete + append hops (the pushed-update overhead)."""
        hops = self._update_hops
        return (
            hops[UpdateType.REFRESH]
            + hops[UpdateType.DELETE]
            + hops[UpdateType.APPEND]
        )

    @property
    def miss_cost(self) -> int:
        """Hops incurred by all misses: queries up + responses down."""
        return self.query_hops + self.first_time_update_hops

    @property
    def overhead_cost(self) -> int:
        """Maintenance update hops down + clear-bit hops up."""
        return self.maintenance_update_hops + self.clear_bit_hops

    @property
    def total_cost(self) -> int:
        return self.miss_cost + self.overhead_cost

    @property
    def miss_latency(self) -> float:
        """Average hops needed to handle a miss (0.0 with no misses)."""
        return self.miss_cost / self.misses if self.misses else 0.0

    @property
    def justified_fraction(self) -> float:
        """Share of resolved justification windows that saw a query."""
        resolved = self.justified_updates + self.unjustified_updates
        return self.justified_updates / resolved if resolved else 0.0

    @property
    def mean_answer_delay(self) -> float:
        """Mean seconds from local query post to answer (misses only)."""
        if not self.answer_delay_count:
            return 0.0
        return self.answer_delay_total / self.answer_delay_count

    def summary(self) -> "MetricsSummary":
        """Freeze current counters into an immutable summary."""
        return MetricsSummary(
            query_hops=self.query_hops,
            first_time_update_hops=self.first_time_update_hops,
            refresh_hops=self._update_hops[UpdateType.REFRESH],
            delete_hops=self._update_hops[UpdateType.DELETE],
            append_hops=self._update_hops[UpdateType.APPEND],
            clear_bit_hops=self.clear_bit_hops,
            miss_cost=self.miss_cost,
            overhead_cost=self.overhead_cost,
            total_cost=self.total_cost,
            queries_posted=self.queries_posted,
            local_hits=self.local_hits,
            misses=self.misses,
            first_time_misses=self.first_time_misses,
            freshness_misses=self.freshness_misses,
            coalesced_queries=self.coalesced_queries,
            answers_delivered=self.answers_delivered,
            miss_latency=self.miss_latency,
            justified_updates=self.justified_updates,
            unjustified_updates=self.unjustified_updates,
            justified_fraction=self.justified_fraction,
            updates_suppressed=self.updates_suppressed,
            updates_dropped_expired=self.updates_dropped_expired,
            mean_answer_delay=self.mean_answer_delay,
        )


@dataclasses.dataclass(frozen=True)
class MetricsSummary:
    """Immutable snapshot of one run's measured quantities."""

    query_hops: int
    first_time_update_hops: int
    refresh_hops: int
    delete_hops: int
    append_hops: int
    clear_bit_hops: int
    miss_cost: int
    overhead_cost: int
    total_cost: int
    queries_posted: int
    local_hits: int
    misses: int
    first_time_misses: int
    freshness_misses: int
    coalesced_queries: int
    answers_delivered: int
    miss_latency: float
    justified_updates: int
    unjustified_updates: int
    justified_fraction: float
    updates_suppressed: int
    updates_dropped_expired: int
    mean_answer_delay: float

    def to_dict(self) -> Dict[str, object]:
        """Plain-data form, suitable for ``json.dumps``."""
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "MetricsSummary":
        """Inverse of :meth:`to_dict`.

        Strict: unknown or missing fields raise ``ValueError`` so a
        stale on-disk record (schema drift) reads as a cache miss
        rather than a silently wrong summary.
        """
        names = {f.name for f in dataclasses.fields(cls)}
        if set(payload) != names:
            unknown = sorted(set(payload) - names)
            missing = sorted(names - set(payload))
            raise ValueError(
                f"summary payload mismatch: unknown={unknown} "
                f"missing={missing}"
            )
        return cls(**payload)

    def saved_miss_ratio(self, baseline: "MetricsSummary") -> float:
        """Saved miss hops per overhead hop, against a baseline run (§3.5).

        ``(baseline.miss_cost - self.miss_cost) / self.overhead_cost`` —
        the paper's "investment return per update push".
        """
        saved = baseline.miss_cost - self.miss_cost
        if self.overhead_cost == 0:
            return math.inf if saved > 0 else 0.0
        return saved / self.overhead_cost

    def cost_ratio(self, baseline: "MetricsSummary") -> float:
        """This run's total cost normalized by the baseline's."""
        if baseline.total_cost == 0:
            return math.inf if self.total_cost else 1.0
        return self.total_cost / baseline.total_cost

    def miss_cost_ratio(self, baseline: "MetricsSummary") -> float:
        """This run's miss cost normalized by the baseline's."""
        if baseline.miss_cost == 0:
            return math.inf if self.miss_cost else 1.0
        return self.miss_cost / baseline.miss_cost
