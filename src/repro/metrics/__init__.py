"""Measurement: hop accounting, miss/overhead costs, report tables.

The paper's cost model (§3.3) measures everything in overlay hops:

* **miss cost** — hops traveled by queries upstream plus hops traveled by
  first-time updates (query responses) downstream;
* **overhead** — hops traveled by maintenance updates (refresh, delete,
  append) downstream plus clear-bit messages upstream;
* **total cost** — their sum (equals miss cost for standard caching);
* **miss latency** — miss cost divided by the number of misses.

:class:`~repro.metrics.collector.MetricsCollector` gathers the raw
counters (hops via a transport send observer, protocol events via direct
increments from node logic), :class:`~repro.metrics.collector.MetricsSummary`
freezes the derived quantities, and :mod:`~repro.metrics.report` renders
the paper-style tables.
"""

from repro.metrics.collector import MetricsCollector, MetricsSummary
from repro.metrics.report import Table, format_float, format_ratio, render_series

__all__ = [
    "MetricsCollector",
    "MetricsSummary",
    "Table",
    "format_float",
    "format_ratio",
    "render_series",
]
