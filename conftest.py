"""Root pytest configuration: execution options for the sweep layers.

These options are registered here (the rootdir conftest is always an
*initial* conftest, so the flags exist no matter which subset of the
suite is collected) and consumed by ``benchmarks/conftest.py``, which
wires them into the parallel executor and the persistent run cache.
"""

import argparse


def _positive_int(text):
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(
            f"must be a positive integer, got {text!r}"
        )
    return value


def pytest_addoption(parser):
    group = parser.getgroup("repro", "CUP reproduction execution")
    group.addoption(
        "--repro-workers", type=_positive_int, default=None, metavar="N",
        help="worker processes for independent sweep cells "
             "(default: $REPRO_WORKERS or 1 = serial)",
    )
    group.addoption(
        "--repro-no-cache", action="store_true", default=False,
        help="disable the persistent run cache for benchmark runs",
    )
    group.addoption(
        "--repro-cache-dir", default=None, metavar="DIR",
        help="run-cache directory (default: $REPRO_CACHE_DIR or "
             ".repro-cache)",
    )
