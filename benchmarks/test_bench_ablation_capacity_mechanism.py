"""Ablation: fractional capacity (§3.7) versus the rate pump (§2.8).

The paper's experiments reduce capacity by dropping a fraction of
updates; its architecture section describes a rate-limited pump with
longest-queue-first sharing and priority reordering.  This bench runs
both mechanisms at comparable stress: the pump defers (no suppression
counted), fractional forwarding drops.
"""

from repro.experiments.ablations import run_capacity_mechanism_ablation
from repro.experiments.runner import clear_cache


def test_ablation_capacity_mechanism(benchmark, bench_scale, publish):
    def run():
        clear_cache()
        return run_capacity_mechanism_ablation(
            bench_scale, paper_rate=10.0, seed=42
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    publish("ablation_capacity_mechanism", result)
