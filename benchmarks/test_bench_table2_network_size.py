"""Table 2: CUP versus standard caching across network sizes (+ §3.5
high-rate point).

Paper shape: CUP's miss cost stays below standard caching's at every
size; standard caching's miss latency grows with the network while CUP's
grows far slower (the latency gap widens); the high-rate point is
dramatically more favorable (paper: 168:1 return at λ=1000).
"""

from repro.experiments.network_size import run_network_size
from repro.experiments.runner import clear_cache


def test_table2_network_size(benchmark, bench_scale, publish):
    def run():
        clear_cache()
        return run_network_size(bench_scale, paper_rate=1.0, seed=42)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    publish("table2_network_size", result)
