"""Ablation: how much of CUP's win is query coalescing alone?

Decomposes CUP into (1) the open-connection baseline, (2) baseline plus
the Pending-First-Update coalescing machinery, (3) full CUP with update
propagation — quantifying each mechanism's contribution (§1 and §4
motivate both separately).
"""

from repro.experiments.ablations import run_coalescing_ablation
from repro.experiments.runner import clear_cache


def test_ablation_coalescing(benchmark, bench_scale, publish):
    def run():
        clear_cache()
        return run_coalescing_ablation(bench_scale, paper_rate=10.0, seed=42)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    publish("ablation_coalescing", result)
