"""Shared benchmark plumbing.

Every benchmark regenerates one of the paper's tables/figures, writes
the rendered table to ``benchmarks/results/<name>.txt``, prints it, and
asserts the paper's qualitative shape expectations.

Scale selection: benchmarks default to the ``small`` preset (256 nodes,
shape-preserving); set ``REPRO_SCALE=paper`` to run the paper's exact
parameters (slow: up to 3M-query cells).

Timing note: simulations are deterministic, so each benchmark is timed
as a single round (``pedantic(rounds=1)``) — the interesting output is
the table, not a latency distribution.

Execution: benchmarks go through the parallel executor and the
persistent run cache.  ``--repro-workers N`` (or ``$REPRO_WORKERS``)
fans independent sweep cells across N processes; ``--repro-no-cache``
and ``--repro-cache-dir`` (or ``$REPRO_NO_CACHE`` / ``$REPRO_CACHE_DIR``)
control the on-disk cache.  The options are registered by the rootdir
``conftest.py``.
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

TESTS_DIR = Path(__file__).resolve().parent.parent / "tests"
if str(TESTS_DIR) not in sys.path:
    sys.path.insert(0, str(TESTS_DIR))

RESULTS_DIR = Path(__file__).resolve().parent / "results"


@pytest.fixture(scope="session", autouse=True)
def repro_execution(request):
    """Wire CLI options/env into the executor and the run cache."""
    from repro.experiments import executor, runcache

    workers = request.config.getoption("--repro-workers")
    if workers is not None:
        executor.configure(workers=workers)
    saved = runcache.snapshot()
    if request.config.getoption("--repro-no-cache"):
        cache = runcache.configure(enabled=False)
    else:
        cache_dir = request.config.getoption("--repro-cache-dir")
        if cache_dir is not None:
            cache = runcache.configure(cache_dir=cache_dir)
        else:
            runcache.reset()
            cache = runcache.active()  # honors $REPRO_NO_CACHE etc.
    yield
    if cache is not None:
        request.config._repro_cache_report = (
            f"repro run cache: {cache.stats} under "
            f"{cache.root}/{cache.fingerprint}"
        )
    runcache.restore(saved)
    if workers is not None:
        executor.configure(workers=None)


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    report = getattr(config, "_repro_cache_report", None)
    if report:
        terminalreporter.write_line(report)


@pytest.fixture(scope="session")
def bench_scale():
    from repro.experiments.config import resolve_scale

    return resolve_scale()


@pytest.fixture()
def publish():
    """Returns a callable that records one experiment's report."""

    def _publish(name: str, result) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        report = result.report()
        (RESULTS_DIR / f"{name}.txt").write_text(report + "\n")
        print()
        print(report)
        failed = [e for e in result.check_expectations() if not e.holds]
        assert not failed, "shape expectations failed:\n" + "\n".join(
            str(e) for e in failed
        )

    return _publish
