"""Shared benchmark plumbing.

Every benchmark regenerates one of the paper's tables/figures, writes
the rendered table to ``benchmarks/results/<name>.txt``, prints it, and
asserts the paper's qualitative shape expectations.

Scale selection: benchmarks default to the ``small`` preset (256 nodes,
shape-preserving); set ``REPRO_SCALE=paper`` to run the paper's exact
parameters (slow: up to 3M-query cells).

Timing note: simulations are deterministic, so each benchmark is timed
as a single round (``pedantic(rounds=1)``) — the interesting output is
the table, not a latency distribution.
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

TESTS_DIR = Path(__file__).resolve().parent.parent / "tests"
if str(TESTS_DIR) not in sys.path:
    sys.path.insert(0, str(TESTS_DIR))

RESULTS_DIR = Path(__file__).resolve().parent / "results"


@pytest.fixture(scope="session")
def bench_scale():
    from repro.experiments.config import resolve_scale

    return resolve_scale()


@pytest.fixture()
def publish():
    """Returns a callable that records one experiment's report."""

    def _publish(name: str, result) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        report = result.report()
        (RESULTS_DIR / f"{name}.txt").write_text(report + "\n")
        print()
        print(report)
        failed = [e for e in result.check_expectations() if not e.holds]
        assert not failed, "shape expectations failed:\n" + "\n".join(
            str(e) for e in failed
        )

    return _publish
