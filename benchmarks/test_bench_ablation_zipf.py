"""Ablation: key-popularity skew on multi-key workloads.

The headline experiments measure one CUP tree (the paper's per-key cost
model).  This bench runs 16-key workloads at fixed aggregate rate while
sweeping the Zipf exponent.  Measured finding: absolute traffic shrinks
with skew for both protocols, while the CUP/standard cost ratio stays
roughly constant — per-key trees are independent, so the ratio is set
by per-tree economics, not by how queries are spread across trees.
"""

from repro.experiments.ablations import run_zipf_ablation
from repro.experiments.runner import clear_cache


def test_ablation_zipf_skew(benchmark, bench_scale, publish):
    def run():
        clear_cache()
        return run_zipf_ablation(bench_scale, paper_rate=10.0, seed=42)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    publish("ablation_zipf", result)
