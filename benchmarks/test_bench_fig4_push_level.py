"""Figure 4: total and miss cost versus push level, high query rates.

Same sweep as Figure 3 at the paper's λ=100 and λ=1000 (the paper plots
these on a log y-axis).  The ``small`` preset runs the λ=100 point; the
λ=1000 cell needs ``REPRO_SCALE=paper``.

Paper shape: at high rates the total-cost curve tapers flat past its
minimum — deep pushes stay justified because subsequent queries are
plentiful.
"""

from repro.experiments.push_level import run_push_level
from repro.experiments.runner import clear_cache


def test_fig4_push_level_high_rate(benchmark, bench_scale, publish):
    def run():
        clear_cache()
        return run_push_level(
            bench_scale, paper_rates=(100.0, 1000.0), seed=42,
            log_scale_figure=True,
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    publish("fig4_push_level_high_rate", result)
