"""Table 1: total cost for varying cut-off policies.

Paper shape: the linear and logarithmic probability-based policies are
α-sensitive at low rates (linear can exceed standard caching);
second-chance consistently beats both and lands near the optimal push
level; every CUP policy converges to a small fraction of standard
caching as the query rate grows.
"""

from repro.experiments.cutoff_policies import run_cutoff_policies
from repro.experiments.runner import clear_cache


def test_table1_cutoff_policies(benchmark, bench_scale, publish):
    def run():
        clear_cache()
        return run_cutoff_policies(
            bench_scale, paper_rates=(1.0, 10.0, 100.0, 1000.0), seed=42
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    publish("table1_cutoff_policies", result)
