"""Ablation: §3.6 authority-side refresh aggregation and sampling.

Table 3 shows per-replica refresh propagation overtaking standard
caching at modest replica counts; §3.6 sketches two mitigations the
authority can apply (propagate a subset of refreshes; batch refreshes
arriving within a threshold window).  This bench measures both at 10
replicas per key.
"""

from repro.experiments.ablations import run_aggregation_ablation
from repro.experiments.runner import clear_cache


def test_ablation_refresh_aggregation(benchmark, bench_scale, publish):
    def run():
        clear_cache()
        return run_aggregation_ablation(
            bench_scale, paper_rate=1.0, replicas=10, seed=42
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    publish("ablation_aggregation", result)
