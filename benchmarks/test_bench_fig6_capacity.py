"""Figure 6: total cost versus reduced outgoing capacity, high rate.

The paper runs λ=1000 (log y-axis) — "especially interesting because CUP
has bigger wins with higher query rates ... CUP has more to lose if
updates do not get propagated".  The ``small`` preset runs the λ=100
equivalent; ``REPRO_SCALE=paper`` runs λ=1000.

Paper shape: same graceful degradation as Figure 5, with CUP's full-
capacity total far below standard caching and Once-Down-Always-Down
worse than Up-And-Down.
"""

from repro.experiments.capacity import run_capacity
from repro.experiments.runner import clear_cache


def test_fig6_capacity_high_rate(benchmark, bench_scale, publish):
    def run():
        clear_cache()
        return run_capacity(
            bench_scale, paper_rate=100.0,
            capacities=(0.0, 0.25, 0.5, 0.75, 1.0), seed=42,
            log_scale_figure=True,
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    publish("fig6_capacity_high_rate", result)
