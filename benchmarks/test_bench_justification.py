"""§3.1 economics: justified-update fractions and overhead recovery.

Not a numbered table in the paper, but its central quantified argument:
updates are justified with probability 1 - e^(-ΛT); at >=50% justified,
CUP's overhead is fully recovered.  This bench measures both across a
rate sweep under the second-chance policy.
"""

from repro.experiments.justification import run_justification
from repro.experiments.runner import clear_cache


def test_justification_economics(benchmark, bench_scale, publish):
    def run():
        clear_cache()
        return run_justification(
            bench_scale, paper_rates=(0.1, 1.0, 10.0, 100.0), seed=42
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    publish("justification_economics", result)
