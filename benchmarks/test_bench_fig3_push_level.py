"""Figure 3: total and miss cost versus push level, low query rates.

Paper shape: miss cost falls monotonically with push level; total cost
reaches its minimum at an interior/deep level; push level 0 equals
standard caching; CUP's best level beats standard caching.
"""

from repro.experiments.push_level import run_push_level
from repro.experiments.runner import clear_cache


def test_fig3_push_level(benchmark, bench_scale, publish):
    def run():
        clear_cache()
        return run_push_level(bench_scale, paper_rates=(1.0, 10.0), seed=42)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    publish("fig3_push_level", result)
