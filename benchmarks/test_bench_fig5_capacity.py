"""Figure 5: total cost versus reduced outgoing capacity, λ=1.

20% of nodes drop to capacity fraction c — repeatedly (Up-And-Down) or
permanently (Once-Down-Always-Down).

Paper shape: miss cost rises as c falls, but gracefully (suppressed
updates also save their own overhead — no cliff at c=0);
Once-Down-Always-Down suffers at least as many misses as Up-And-Down.
"""

from repro.experiments.capacity import run_capacity
from repro.experiments.runner import clear_cache


def test_fig5_capacity_low_rate(benchmark, bench_scale, publish):
    def run():
        clear_cache()
        return run_capacity(
            bench_scale, paper_rate=1.0,
            capacities=(0.0, 0.25, 0.5, 0.75, 1.0), seed=42,
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    publish("fig5_capacity_low_rate", result)
