"""Sweep benchmark: topology snapshot reuse across cells.

A sweep's cells share one topology; the executor's snapshot cache
(:mod:`repro.experiments.topology`) makes every cell after the first
stop paying the overlay build.  This suite measures, at the n = 4096
scale cell:

* **cold**: first lease (actual overlay construction) plus a fresh
  ``CupNetwork`` setup that rebuilds everything itself;
* **warm**: a repeat lease (cache hit) plus a ``CupNetwork`` setup on
  the leased snapshot.

It asserts the acceptance property directly: re-running the same
topology has near-zero incremental topology cost — the warm lease is
orders of magnitude under the cold build and the warm network reports
zero ``routing_build_seconds`` — and referees correctness by comparing
the warm cell's summary against the cold one's, byte for byte.
"""

import time

from repro.core.protocol import CupNetwork
from repro.experiments import topology
from repro.experiments.config import SMALL


def _config():
    return SMALL.config(seed=42, num_nodes=4096, query_rate=SMALL.rate(100.0))


def test_sweep_topology_snapshot_reuse(perf_publish):
    config = _config()
    topology.clear()

    started = time.perf_counter()
    snapshot = topology.lease(config)
    cold_build = time.perf_counter() - started

    started = time.perf_counter()
    cold_net = CupNetwork(config)
    cold_setup = time.perf_counter() - started

    started = time.perf_counter()
    leased = topology.lease(config)
    warm_lease = time.perf_counter() - started
    assert leased is snapshot, "second lease must hit the snapshot cache"

    started = time.perf_counter()
    warm_net = CupNetwork(config, topology=leased)
    warm_setup = time.perf_counter() - started

    # Near-zero incremental topology cost on a sweep re-run: the warm
    # lease is a dict probe, and the warm network reports no routing
    # build at all (its snapshot carries the tables and memos).
    assert warm_lease < max(0.005, 0.10 * cold_build), (
        f"warm lease took {warm_lease:.4f}s vs cold build {cold_build:.4f}s"
    )
    assert warm_net.metrics.routing_build_seconds == 0.0
    assert warm_net.metrics.routing_table_builds == 0
    assert cold_net.metrics.routing_build_seconds > 0.0

    # Correctness referee: the shared snapshot changes nothing.
    cold_summary = cold_net.run()
    warm_summary = warm_net.run()
    assert warm_summary == cold_summary

    perf_publish(
        "sweep_topology_snapshot",
        wall_seconds=cold_build,
        ops=config.num_nodes,
        unit="nodes",
        cold_build_seconds=round(cold_build, 6),
        warm_lease_seconds=round(warm_lease, 6),
        cold_setup_seconds=round(cold_setup, 6),
        warm_setup_seconds=round(warm_setup, 6),
        cold_routing_build_seconds=round(
            cold_net.metrics.routing_build_seconds, 6
        ),
        warm_routing_build_seconds=0.0,
    )
