"""Micro benchmarks: per-overlay ``next_hop`` routing throughput.

One benchmark per overlay (Chord, Pastry, CAN), each measuring the
memoized fast path against the unmemoized reference implementation on
the same (node, key) decision mix — n = 1024 members, 64 keys, every
pair warmed so the fast path is measured at its steady state (dict
probes), exactly how the simulator hits it: a production run resolves
the same (node, key) pairs millions of times between membership events.

The ≥3x acceptance target of the fast-path PR is asserted here, so a
regression that quietly strips the memoization fails the perf suite
rather than just slowing the trajectory.  Reference throughput is
measured on a subsample of the pairs (the Pastry reference is an O(n)
scan; timing every pair would dominate suite runtime) and normalized to
per-call cost.
"""

from perfutil import best_of

from repro.overlay.can import CanOverlay
from repro.overlay.chord import ChordOverlay
from repro.overlay.pastry import PastryOverlay

#: Members per overlay and distinct keys in the decision mix.
NUM_NODES = 1024
NUM_KEYS = 64
#: Timed fast-path next_hop calls per round.
FAST_CALLS = 200_000
#: Reference calls per round (normalized; the Pastry reference is O(n)).
REFERENCE_CALLS = 2_000

#: The fast path must beat the reference by at least this factor.
SPEEDUP_FLOOR = 3.0


def _build(overlay_name):
    if overlay_name == "chord":
        return ChordOverlay.build(range(NUM_NODES))
    if overlay_name == "pastry":
        return PastryOverlay.build(range(NUM_NODES))
    return CanOverlay.perfect_grid(NUM_NODES)


def _decision_mix(overlay):
    """A deterministic spread of (node, key) routing decisions."""
    nodes = sorted(overlay.node_ids(), key=str)
    keys = [f"k{i:05d}" for i in range(NUM_KEYS)]
    pairs = []
    for i in range(4096):
        pairs.append((nodes[(i * 131) % len(nodes)], keys[i % NUM_KEYS]))
    return pairs


def _measure_overlay(overlay_name, perf_publish):
    overlay = _build(overlay_name)
    pairs = _decision_mix(overlay)
    for node_id, key in pairs:  # warm the memo and route tables
        overlay.next_hop(node_id, key)

    def fast_round():
        next_hop = overlay.next_hop
        calls = 0
        while calls < FAST_CALLS:
            for node_id, key in pairs:
                next_hop(node_id, key)
            calls += len(pairs)
        return calls

    def reference_round():
        next_hop = overlay.next_hop_reference
        for node_id, key in pairs[:REFERENCE_CALLS]:
            next_hop(node_id, key)
        return min(REFERENCE_CALLS, len(pairs))

    fast_wall, fast_ops = best_of(fast_round)
    ref_wall, ref_ops = best_of(reference_round)
    fast_rate = fast_ops / fast_wall
    ref_rate = ref_ops / ref_wall
    speedup = fast_rate / ref_rate

    perf_publish(
        f"overlay_next_hop_{overlay_name}",
        wall_seconds=fast_wall,
        ops=fast_ops,
        unit="hops",
        reference_per_sec=round(ref_rate, 1),
        speedup_vs_reference=round(speedup, 1),
        nodes=NUM_NODES,
        keys=NUM_KEYS,
    )
    assert speedup >= SPEEDUP_FLOOR, (
        f"{overlay_name}: memoized next_hop is only {speedup:.1f}x the "
        f"reference (floor {SPEEDUP_FLOOR}x) — fast path regressed"
    )


def test_overlay_next_hop_chord(perf_publish):
    _measure_overlay("chord", perf_publish)


def test_overlay_next_hop_pastry(perf_publish):
    _measure_overlay("pastry", perf_publish)


def test_overlay_next_hop_can(perf_publish):
    _measure_overlay("can", perf_publish)


def test_overlay_authority_chord(perf_publish):
    """Authority resolution: interned key positions + successor memo."""
    overlay = ChordOverlay.build(range(NUM_NODES))
    keys = [f"k{i:05d}" for i in range(NUM_KEYS)]
    for key in keys:
        overlay.authority(key)

    def round_fn():
        authority = overlay.authority
        calls = 0
        while calls < FAST_CALLS:
            for key in keys:
                authority(key)
            calls += len(keys)
        return calls

    wall, ops = best_of(round_fn)
    perf_publish(
        "overlay_authority_chord",
        wall_seconds=wall,
        ops=ops,
        unit="lookups",
        nodes=NUM_NODES,
    )
