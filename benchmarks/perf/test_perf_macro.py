"""Macro benchmark: wall-time of one standard sweep cell.

The cell is the heaviest point of the Table 2 (`run_network_size`)
sweep at the default ``small`` preset: n = 1024 nodes at the §3.5
high-rate operating point (paper-λ = 100).  This is the number the
tentpole optimization is accountable to — the trajectory target is
events/sec on this cell, recorded per PR in ``BENCH_perf.json``.

The run bypasses every cache layer (a cache hit would measure JSON
parsing, not the simulator) and asserts the golden metric numbers so a
"fast but wrong" regression cannot slip through the perf suite.
"""

import time

from perfutil import PERF_ROUNDS

from repro.core.protocol import CupNetwork
from repro.experiments.config import SMALL


def _macro_config():
    return SMALL.config(seed=42, num_nodes=1024, query_rate=SMALL.rate(100.0))


def test_macro_network_size_cell(perf_publish):
    # Warmup round, then best-of timed rounds (fresh network each time;
    # the simulation itself is deterministic).
    CupNetwork(_macro_config()).run()
    best = None
    for _ in range(PERF_ROUNDS):
        net = CupNetwork(_macro_config())
        t0 = time.perf_counter()
        summary = net.run()
        dt = time.perf_counter() - t0
        if best is None or dt < best[0]:
            best = (dt, net.sim.events_processed, summary)
    wall, events, summary = best

    # Correctness guard: byte-identical metrics per run (the referee for
    # every hot-path change; drift here means the optimization changed
    # simulation behaviour, not just its speed).
    assert summary.queries_posted == 74716
    assert summary.total_cost == 15358

    perf_publish(
        "macro_network_size_cell",
        wall_seconds=wall,
        ops=events,
        unit="events",
        cell="run_network_size n=1024 paper-rate=100 scale=small",
        queries_posted=summary.queries_posted,
        total_cost=summary.total_cost,
    )
