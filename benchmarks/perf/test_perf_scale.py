"""Macro benchmark: the `run_network_size` cell at production scale.

The overlay fast path exists so the reproduction can run the paper's
network-size axis far beyond the original 2^12 = 4096 nodes.  This suite
times the standard cell (the `small` preset at the §3.5 high-rate
operating point, paper-λ = 100 — identical to ``test_perf_macro``'s
n=1024 cell except for ``num_nodes``) at n = 4096, 16384 and 65536,
publishing three numbers per cell into ``BENCH_perf.json``:

* steady-state **events/sec** of the run phase;
* **setup seconds** (network construction, including overlay build —
  reported separately so routing-table precomputation cannot hide
  inside, or be mistaken for, steady-state throughput);
* **bytes per node** at build time (a tracemalloc'd twin build), the
  number that bounds how far n can be pushed on one machine.

Each cell is timed as a single shot — the simulation is deterministic
and runs for seconds, so machine noise is amortized by run length and
the warmup/best-of protocol of the micro benchmarks would triple a
multi-minute suite for no added signal.  The golden metric pins make the
cells referee their own correctness: a "fast but wrong" routing change
fails here before it can publish a throughput number.

Set ``REPRO_PERF_SCALE_MAX`` (e.g. ``16384``) to cap the sweep on
constrained machines; every cell at or below the cap still runs.
"""

import os
import time
import tracemalloc

from repro.core.protocol import CupNetwork
from repro.experiments.config import SMALL

#: (num_nodes, golden queries_posted, golden total_cost) per cell.  The
#: workload stream is identical across n (same seed, same arrival
#: process), so queries_posted stays fixed while routing cost grows with
#: the network diameter.
SCALE_CELLS = (
    (4096, 74716, 60796),
    (16384, 74716, 239336),
    (65536, 74716, 932797),
)


def _scale_cap() -> int:
    return int(os.environ.get("REPRO_PERF_SCALE_MAX", "65536"))


def _cell_config(num_nodes: int):
    return SMALL.config(
        seed=42, num_nodes=num_nodes, query_rate=SMALL.rate(100.0)
    )


def test_scale_network_size_cells(perf_publish):
    cap = _scale_cap()
    ran = 0
    for num_nodes, golden_queries, golden_cost in SCALE_CELLS:
        if num_nodes > cap:
            continue
        config = _cell_config(num_nodes)

        setup_started = time.perf_counter()
        net = CupNetwork(config)
        setup_seconds = time.perf_counter() - setup_started

        run_started = time.perf_counter()
        summary = net.run()
        run_seconds = time.perf_counter() - run_started
        events = net.sim.events_processed

        # Correctness referee: byte-identical metrics per cell.
        assert summary.queries_posted == golden_queries, num_nodes
        assert summary.total_cost == golden_cost, num_nodes

        # Memory footprint: a traced twin build (tracemalloc skews wall
        # time, so it never overlaps the timed phases above).
        tracemalloc.start()
        CupNetwork(config)
        traced_bytes, _ = tracemalloc.get_traced_memory()
        tracemalloc.stop()

        perf_publish(
            f"scale_network_size_n{num_nodes}",
            wall_seconds=run_seconds,
            ops=events,
            unit="events",
            cell=f"run_network_size n={num_nodes} paper-rate=100 scale=small",
            setup_seconds=round(setup_seconds, 6),
            routing_build_seconds=round(
                net.metrics.routing_build_seconds, 6
            ),
            routing_table_builds=net.metrics.routing_table_builds,
            bytes_per_node=int(traced_bytes / num_nodes),
            queries_posted=summary.queries_posted,
            total_cost=summary.total_cost,
        )
        ran += 1
    assert ran >= 1, "REPRO_PERF_SCALE_MAX excluded every scale cell"
