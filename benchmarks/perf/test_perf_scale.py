"""Macro benchmark: the `run_network_size` cell at production scale.

The overlay fast path exists so the reproduction can run the paper's
network-size axis far beyond the original 2^12 = 4096 nodes.  This suite
times the standard cell (the `small` preset at the §3.5 high-rate
operating point, paper-λ = 100 — identical to ``test_perf_macro``'s
n=1024 cell except for ``num_nodes``) at n = 4096, 16384 and 65536,
publishing three numbers per cell into ``BENCH_perf.json``:

* steady-state **events/sec** of the run phase;
* **setup seconds** (network construction, including overlay build —
  reported separately so routing-table precomputation cannot hide
  inside, or be mistaken for, steady-state throughput);
* **bytes per node** at build time (a tracemalloc'd twin build), the
  number that bounds how far n can be pushed on one machine.

Each cell is timed as a single shot — the simulation is deterministic
and runs for seconds, so machine noise is amortized by run length and
the warmup/best-of protocol of the micro benchmarks would triple a
multi-minute suite for no added signal.  The golden metric pins make the
cells referee their own correctness: a "fast but wrong" routing change
fails here before it can publish a throughput number.

Set ``REPRO_PERF_SCALE_MAX`` (e.g. ``16384``) to cap the sweep on
constrained machines; every cell at or below the cap still runs.
"""

import os
import time
import tracemalloc

from repro.core.protocol import CupNetwork
from repro.experiments import topology
from repro.experiments.config import SMALL

#: Seed (pre-optimization) per-event throughput of the two ratio cells,
#: from the committed BENCH_perf.json of PR 3: the accountability
#: baseline for the flat-cost-in-N work.
SEED_THROUGHPUT_N1024 = 229089.8
SEED_THROUGHPUT_N16384 = 64572.5
SEED_DEGRADATION_RATIO = SEED_THROUGHPUT_N1024 / SEED_THROUGHPUT_N16384

#: Regression gate for the measured degradation ratio.  The seed sat at
#: 3.55; the batched fan-out + flat-counter + snapshot work brought the
#: sweep steady state to ~2.2-2.5 on the reference box.  The bound sits
#: ~25% above the recorded value — wide enough that shared-runner
#: co-tenancy (which inflates the multi-second n=16384 cell more than
#: the n=1024 one) does not fire it, tight enough that regressing back
#: toward the seed behaviour fails the suite.  The machine-normalized
#: per-cell gate lives in scripts/check_perf_regression.py.
MAX_DEGRADATION_RATIO = 3.1

#: (num_nodes, golden queries_posted, golden total_cost) per cell.  The
#: workload stream is identical across n (same seed, same arrival
#: process), so queries_posted stays fixed while routing cost grows with
#: the network diameter.
SCALE_CELLS = (
    (4096, 74716, 60796),
    (16384, 74716, 239336),
    (65536, 74716, 932797),
)


def _scale_cap() -> int:
    return int(os.environ.get("REPRO_PERF_SCALE_MAX", "65536"))


def _cell_config(num_nodes: int):
    return SMALL.config(
        seed=42, num_nodes=num_nodes, query_rate=SMALL.rate(100.0)
    )


def test_scale_network_size_cells(perf_publish):
    cap = _scale_cap()
    ran = 0
    for num_nodes, golden_queries, golden_cost in SCALE_CELLS:
        if num_nodes > cap:
            continue
        config = _cell_config(num_nodes)

        setup_started = time.perf_counter()
        net = CupNetwork(config)
        setup_seconds = time.perf_counter() - setup_started

        run_started = time.perf_counter()
        summary = net.run()
        run_seconds = time.perf_counter() - run_started
        events = net.sim.events_processed

        # Correctness referee: byte-identical metrics per cell.
        assert summary.queries_posted == golden_queries, num_nodes
        assert summary.total_cost == golden_cost, num_nodes

        # Memory footprint: a traced twin build (tracemalloc skews wall
        # time, so it never overlaps the timed phases above).
        tracemalloc.start()
        CupNetwork(config)
        traced_bytes, _ = tracemalloc.get_traced_memory()
        tracemalloc.stop()

        perf_publish(
            f"scale_network_size_n{num_nodes}",
            wall_seconds=run_seconds,
            ops=events,
            unit="events",
            cell=f"run_network_size n={num_nodes} paper-rate=100 scale=small",
            setup_seconds=round(setup_seconds, 6),
            routing_build_seconds=round(
                net.metrics.routing_build_seconds, 6
            ),
            routing_table_builds=net.metrics.routing_table_builds,
            bytes_per_node=int(traced_bytes / num_nodes),
            queries_posted=summary.queries_posted,
            total_cost=summary.total_cost,
        )
        ran += 1
    assert ran >= 1, "REPRO_PERF_SCALE_MAX excluded every scale cell"


def _sweep_steady_state_throughput(num_nodes: int, rounds: int = 2):
    """Best per-event throughput of a sweep re-run of one cell.

    Measures what a sweep pays per cell once the topology snapshot cache
    is warm (tentpole layer 3): the overlay — route memos included — is
    leased, only the run phase is timed, and the best of ``rounds`` runs
    is taken (the simulation is deterministic; rounds differ only by
    machine noise and memo warmth).
    """
    config = _cell_config(num_nodes)
    topo = topology.lease(config)
    best = None
    for _ in range(rounds):
        net = CupNetwork(config, topology=topo)
        started = time.perf_counter()
        summary = net.run()
        elapsed = time.perf_counter() - started
        if best is None or elapsed < best[0]:
            best = (elapsed, net.sim.events_processed, summary)
    return best


def test_scale_degradation_ratio(perf_publish):
    """Pin the n=1024 → n=16384 per-event throughput degradation.

    The seed degraded 3.55x (more hops per query at a larger diameter,
    and each hop cost ~20 us); the batched fan-out and flat-counter
    layers cut per-hop cost by more than half, which lifts the large-N
    cell — where hops dominate the event mix — far more than the small
    one.  Both cells are measured back-to-back in this process, so the
    ratio cancels machine speed; the absolute throughputs are published
    alongside the seed values so the trajectory file records the
    improvement factors per PR.
    """
    if _scale_cap() < 16384:
        import pytest

        pytest.skip("REPRO_PERF_SCALE_MAX excludes the n=16384 ratio cell")
    wall_small, events_small, summary_small = _sweep_steady_state_throughput(
        1024, rounds=3
    )
    wall_large, events_large, summary_large = _sweep_steady_state_throughput(
        16384, rounds=2
    )
    # The golden referee: fast-but-wrong cannot publish a ratio.
    assert summary_small.queries_posted == 74716
    assert summary_small.total_cost == 15358
    assert summary_large.queries_posted == 74716
    assert summary_large.total_cost == 239336

    throughput_small = events_small / wall_small
    throughput_large = events_large / wall_large
    ratio = throughput_small / throughput_large
    perf_publish(
        "scale_degradation_ratio",
        wall_seconds=wall_small + wall_large,
        ops=events_small + events_large,
        unit="events",
        degradation_ratio=round(ratio, 3),
        throughput_n1024=round(throughput_small, 1),
        throughput_n16384=round(throughput_large, 1),
        seed_degradation_ratio=round(SEED_DEGRADATION_RATIO, 3),
        seed_throughput_n1024=SEED_THROUGHPUT_N1024,
        seed_throughput_n16384=SEED_THROUGHPUT_N16384,
        ratio_improvement=round(SEED_DEGRADATION_RATIO / ratio, 3),
        large_n_throughput_improvement=round(
            throughput_large / SEED_THROUGHPUT_N16384, 3
        ),
    )
    assert ratio <= MAX_DEGRADATION_RATIO, (
        f"per-event throughput degradation n=1024 -> n=16384 is "
        f"{ratio:.2f}x (seed {SEED_DEGRADATION_RATIO:.2f}x); the flat-cost "
        f"work held this under {MAX_DEGRADATION_RATIO}"
    )
