"""Micro-benchmark: transport send/deliver throughput.

A ping-pong pair exercises the full per-hop path — observer dispatch,
delay lookup, delivery scheduling, handler dispatch — which is what
every query, update and clear-bit pays once per overlay hop.  Measured
with the metrics collector attached (the production configuration).
"""

from perfutil import best_of

from repro.metrics.collector import MetricsCollector
from repro.sim.engine import Simulator
from repro.sim.network import Message, Transport

HOPS = 100_000


class _Ball(Message):
    kind = "query"
    __slots__ = ("key", "path")

    def __init__(self):
        super().__init__()
        self.key = "k"
        self.path = None


class _Paddle:
    """Returns every delivery to the peer until the rally budget drains."""

    def __init__(self, transport, me, peer, budget):
        self._transport = transport
        self._me = me
        self._peer = peer
        self.budget = budget

    def receive(self, message, sender):
        if self.budget[0] > 0:
            self.budget[0] -= 1
            self._transport.send(self._me, self._peer, message)


def test_transport_ping_pong(perf_publish):
    def run() -> int:
        sim = Simulator()
        transport = Transport(sim, default_delay=0.001)
        collector = MetricsCollector()
        transport.add_send_observer(collector.on_send)
        budget = [HOPS]
        transport.register("a", _Paddle(transport, "a", "b", budget))
        transport.register("b", _Paddle(transport, "b", "a", budget))
        transport.add_link("a", "b", delay=0.001)
        transport.send("a", "b", _Ball())
        sim.run()
        return transport.sent

    wall, ops = best_of(run)
    perf_publish("transport_ping_pong", wall_seconds=wall, ops=ops,
                 unit="hops")
