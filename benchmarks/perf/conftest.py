"""Perf-suite plumbing: the ``BENCH_perf.json`` publisher.

Unlike the paper-table benchmarks (which publish rendered tables), the
perf suite publishes *throughput numbers* — events/sec and wall seconds
per layer — so that every future PR is accountable to a machine-readable
performance trajectory.  Each test records one or more measurements via
the ``perf_publish`` fixture; at session end the accumulated record is
written to ``benchmarks/results/BENCH_perf.json``.

Measurement discipline lives in :mod:`perfutil` (one untimed warmup,
best of ``PERF_ROUNDS`` timed rounds).
"""

from __future__ import annotations

import datetime
import json
import platform
import subprocess
import sys
from pathlib import Path
from typing import Dict, Optional

import pytest

PERF_DIR = Path(__file__).resolve().parent
if str(PERF_DIR) not in sys.path:
    sys.path.insert(0, str(PERF_DIR))

from perfutil import PERF_ROUNDS  # noqa: E402

RESULTS_DIR = PERF_DIR.parent / "results"
PERF_RECORD = RESULTS_DIR / "BENCH_perf.json"
TRAJECTORY_RECORD = RESULTS_DIR / "BENCH_trajectory.json"


def _git_revision() -> Optional[str]:
    try:
        return subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=PERF_DIR, capture_output=True, text=True, timeout=10,
        ).stdout.strip() or None
    except (OSError, subprocess.SubprocessError):
        return None


def _append_trajectory(record: Dict[str, dict]) -> None:
    """Append one per-PR snapshot of the key numbers to the trajectory.

    ``BENCH_trajectory.json`` is append-only across PRs: one entry per
    recorded suite run, keyed by git revision, holding each benchmark's
    throughput plus the scale-degradation quantities — so the perf
    trajectory of the whole repository is machine-readable without
    diffing BENCH_perf.json versions out of git history.  Re-running the
    suite on the same revision replaces that revision's entry instead of
    duplicating it.
    """
    entry = {
        "revision": _git_revision(),
        "recorded": datetime.date.today().isoformat(),
        "python": platform.python_version(),
        "throughput_per_sec": {
            name: m.get("throughput_per_sec") for name, m in record.items()
        },
    }
    ratio = record.get("scale_degradation_ratio")
    if ratio is not None:
        entry["degradation_ratio_n16384"] = ratio.get("degradation_ratio")
        entry["ratio_improvement_vs_seed"] = ratio.get("ratio_improvement")
        entry["large_n_throughput_improvement_vs_seed"] = ratio.get(
            "large_n_throughput_improvement"
        )
    try:
        trajectory = json.loads(TRAJECTORY_RECORD.read_text())
        if not isinstance(trajectory.get("entries"), list):
            raise ValueError
    except (OSError, ValueError):
        trajectory = {"suite": "perf-trajectory", "entries": []}
    entries = trajectory["entries"]
    # One entry per revision — a None revision (no git available) is a
    # key of its own, so repeated tarball runs merge instead of growing
    # the file unboundedly.
    existing = None
    for candidate in entries:
        if candidate.get("revision") == entry["revision"]:
            existing = candidate
            break
    if existing is not None:
        # Merge into the revision's record instead of replacing it: a
        # partial invocation (single file, REPRO_PERF_SCALE_MAX-capped
        # run) refreshes the benchmarks it ran without destroying the
        # full-suite numbers already recorded for this revision.
        existing["recorded"] = entry["recorded"]
        existing["python"] = entry["python"]
        existing.setdefault("throughput_per_sec", {}).update(
            entry["throughput_per_sec"]
        )
        for field in (
            "degradation_ratio_n16384",
            "ratio_improvement_vs_seed",
            "large_n_throughput_improvement_vs_seed",
        ):
            if field in entry:
                existing[field] = entry[field]
    else:
        entries.append(entry)
    TRAJECTORY_RECORD.write_text(
        json.dumps(trajectory, indent=2, sort_keys=True) + "\n"
    )


@pytest.fixture(scope="session")
def perf_record():
    """Session-wide accumulator, flushed to BENCH_perf.json at the end."""
    record: Dict[str, dict] = {}
    yield record
    if not record:
        return
    RESULTS_DIR.mkdir(exist_ok=True)
    payload = {
        "suite": "perf",
        "python": platform.python_version(),
        "platform": sys.platform,
        "rounds": PERF_ROUNDS,
        "benchmarks": record,
    }
    PERF_RECORD.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    _append_trajectory(record)


@pytest.fixture()
def perf_publish(perf_record):
    """Record one named measurement into the session's BENCH_perf.json."""

    def _publish(name: str, *, wall_seconds: float, ops: int,
                 unit: str = "events", **extra) -> None:
        measurement = {
            "wall_seconds": round(wall_seconds, 6),
            "ops": ops,
            "unit": unit,
            "throughput_per_sec": round(ops / wall_seconds, 1),
        }
        measurement.update(extra)
        perf_record[name] = measurement
        print(f"\n[perf] {name}: {measurement['throughput_per_sec']:,.0f} "
              f"{unit}/sec ({ops} {unit} in {wall_seconds:.3f}s)")

    return _publish
