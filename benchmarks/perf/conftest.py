"""Perf-suite plumbing: the ``BENCH_perf.json`` publisher.

Unlike the paper-table benchmarks (which publish rendered tables), the
perf suite publishes *throughput numbers* — events/sec and wall seconds
per layer — so that every future PR is accountable to a machine-readable
performance trajectory.  Each test records one or more measurements via
the ``perf_publish`` fixture; at session end the accumulated record is
written to ``benchmarks/results/BENCH_perf.json``.

Measurement discipline lives in :mod:`perfutil` (one untimed warmup,
best of ``PERF_ROUNDS`` timed rounds).
"""

from __future__ import annotations

import json
import platform
import sys
from pathlib import Path
from typing import Dict

import pytest

PERF_DIR = Path(__file__).resolve().parent
if str(PERF_DIR) not in sys.path:
    sys.path.insert(0, str(PERF_DIR))

from perfutil import PERF_ROUNDS  # noqa: E402

RESULTS_DIR = PERF_DIR.parent / "results"
PERF_RECORD = RESULTS_DIR / "BENCH_perf.json"


@pytest.fixture(scope="session")
def perf_record():
    """Session-wide accumulator, flushed to BENCH_perf.json at the end."""
    record: Dict[str, dict] = {}
    yield record
    if not record:
        return
    RESULTS_DIR.mkdir(exist_ok=True)
    payload = {
        "suite": "perf",
        "python": platform.python_version(),
        "platform": sys.platform,
        "rounds": PERF_ROUNDS,
        "benchmarks": record,
    }
    PERF_RECORD.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")


@pytest.fixture()
def perf_publish(perf_record):
    """Record one named measurement into the session's BENCH_perf.json."""

    def _publish(name: str, *, wall_seconds: float, ops: int,
                 unit: str = "events", **extra) -> None:
        measurement = {
            "wall_seconds": round(wall_seconds, 6),
            "ops": ops,
            "unit": unit,
            "throughput_per_sec": round(ops / wall_seconds, 1),
        }
        measurement.update(extra)
        perf_record[name] = measurement
        print(f"\n[perf] {name}: {measurement['throughput_per_sec']:,.0f} "
              f"{unit}/sec ({ops} {unit} in {wall_seconds:.3f}s)")

    return _publish
