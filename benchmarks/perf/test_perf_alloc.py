"""Allocation benchmark: the batched fan-out shares one payload.

The §2.6 fan-out used to clone a full ``UpdateMessage`` per interested
child; the batched path allocates one immutable payload and k
lightweight envelopes.  This suite pins that property mechanically:

* **payload identity** — every envelope delivered to the k children
  carries the *same* entries tuple object (zero payload copies per
  push, whatever k is);
* **allocation scaling** — tracemalloc'd bytes per child stay flat and
  small as k grows with a large multi-entry payload, i.e. nothing on
  the per-child path scales with the payload size.

The fan-out is driven white-box through ``_forward_to_interested`` on a
real wired network, so the measured path is exactly the protocol's.
"""

import time
import tracemalloc

from repro.core.entry import IndexEntry
from repro.core.messages import UpdateMessage, UpdateType
from repro.core.protocol import CupConfig, CupNetwork

#: Entries carried by the benchmark update: big enough that any
#: accidental payload copy would dominate the per-child byte count.
PAYLOAD_ENTRIES = 64


def _fanout_network(children: int):
    """A 64-node network with one key whose authority has ``children``
    interested subscribers (interest bits forged directly — transport
    delivers between any registered pair)."""
    config = CupConfig(
        num_nodes=64, total_keys=1, query_rate=1.0, seed=3,
        query_start=10.0, query_duration=10.0, drain=10.0,
    )
    net = CupNetwork(config)
    key = net.keys[0]
    authority = net.overlay.authority(key)
    node = net.nodes[authority]
    state = node.cache.get_or_create(key)
    state.interest = {
        node_id for node_id in list(net.nodes) if node_id != authority
    }
    while len(state.interest) > children:
        state.interest.pop()
    state._interest_sorted = None
    return net, node, state, key


def _refresh(key: str, at: float, seq: int) -> UpdateMessage:
    entries = tuple(
        IndexEntry(key, f"r{i:03d}", f"addr{i}", 1000.0, at, sequence=seq)
        for i in range(PAYLOAD_ENTRIES)
    )
    return UpdateMessage(key, UpdateType.REFRESH, entries, "r000", at)


def test_fanout_shares_one_payload_per_push():
    for children in (1, 4, 16, 63):
        net, node, state, key = _fanout_network(children)
        seen = []
        net.transport.add_send_observer(
            lambda src, dst, message: seen.append(message)
        )
        update = _refresh(key, at=0.0, seq=1)
        delivered = node._forward_to_interested(state, update)
        assert len(delivered) == children
        assert len(seen) == children
        # One shared immutable payload, k envelopes: every hop carries
        # the identical entries tuple object, and distinct envelopes.
        assert all(message.entries is update.entries for message in seen)
        assert len({id(message) for message in seen}) == children


def test_fanout_allocates_o1_payloads_per_push(perf_publish):
    """Per-child allocation stays flat and payload-independent in k."""
    pushes = 50

    def bytes_per_child(children: int) -> float:
        net, node, state, key = _fanout_network(children)
        # Warm caches (interest memo, metrics slots) outside the trace.
        node._forward_to_interested(state, _refresh(key, 0.0, 1))
        tracemalloc.start()
        for i in range(pushes):
            node._forward_to_interested(state, _refresh(key, 0.0, i + 2))
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        # Peak covers the in-flight envelopes plus the payloads under
        # construction; per child per push it must stay near the size
        # of one envelope, not of the 64-entry payload.
        return peak / (pushes * children)

    small_k = bytes_per_child(4)
    large_k = bytes_per_child(63)
    payload_bytes = PAYLOAD_ENTRIES * 100  # ~100 B per IndexEntry, floor
    assert large_k < payload_bytes, (
        f"per-child allocation {large_k:.0f} B approaches the payload "
        f"size ({payload_bytes} B) — the fan-out is copying payloads"
    )
    # Flatness in k: amortizing the single payload over more children
    # must not grow the per-child cost (generous 2x band for allocator
    # noise).
    assert large_k <= small_k * 2.0, (large_k, small_k)

    # Throughput of the push itself (envelopes placed on the wire per
    # second), published so the trajectory records fan-out cost per PR.
    net, node, state, key = _fanout_network(63)
    updates = [_refresh(key, 0.0, i + 1) for i in range(pushes + 1)]
    node._forward_to_interested(state, updates[0])
    started = time.perf_counter()
    for update in updates[1:]:
        node._forward_to_interested(state, update)
    elapsed = time.perf_counter() - started
    perf_publish(
        "fanout_push",
        wall_seconds=elapsed,
        ops=pushes * 63,
        unit="envelopes",
        bytes_per_child_k4=round(small_k, 1),
        bytes_per_child_k63=round(large_k, 1),
        payload_entries=PAYLOAD_ENTRIES,
    )
