"""Micro-benchmark: raw engine event throughput.

The event loop is the floor under every other number — no simulation
layer can process events faster than the engine pops them.  Three
shapes: a pre-filled heap (pure pop/dispatch), a self-perpetuating
chain (steady-state schedule+pop, the workload generator's pattern),
and a cancellation-heavy run (lazy-deletion sweep cost).
"""

from perfutil import best_of

from repro.sim.engine import Simulator

PREFILL_EVENTS = 200_000
CHAIN_EVENTS = 200_000
CANCEL_EVENTS = 100_000


def _noop():
    pass


def test_engine_prefilled_heap(perf_publish):
    def run() -> int:
        sim = Simulator()
        for i in range(PREFILL_EVENTS):
            sim.schedule(float(i % 64), _noop)
        sim.run()
        return sim.events_processed

    wall, ops = best_of(run)
    perf_publish("engine_prefilled", wall_seconds=wall, ops=ops)


def test_engine_selfperpetuating_chain(perf_publish):
    def run() -> int:
        sim = Simulator()
        remaining = [CHAIN_EVENTS]

        def tick():
            remaining[0] -= 1
            if remaining[0]:
                sim.schedule(0.001, tick)

        sim.schedule(0.001, tick)
        sim.run()
        return sim.events_processed

    wall, ops = best_of(run)
    perf_publish("engine_chain", wall_seconds=wall, ops=ops)


def test_engine_cancellation_sweep(perf_publish):
    """Half the scheduled events are cancelled before the run drains."""

    def run() -> int:
        sim = Simulator()
        handles = [
            sim.schedule(float(i % 64), _noop) for i in range(CANCEL_EVENTS)
        ]
        for handle in handles[::2]:
            handle.cancel()
        sim.run()
        return CANCEL_EVENTS  # scheduled ops, fired + swept

    wall, ops = best_of(run)
    perf_publish("engine_cancellation", wall_seconds=wall, ops=ops,
                 unit="scheduled")
