"""Micro-benchmark: update-channel pump throughput.

The §2.8 rate pump serves the longest queue once per token.  The
benchmark loads many neighbors' queues and drains them at a high token
rate, exercising exactly the per-token path (longest-queue selection,
priority pop, expiry check, reschedule).  A second shape measures the
fractional-capacity coin-flip path.
"""

import numpy as np
from perfutil import best_of

from repro.core.channels import CapacityConfig, OutgoingUpdateChannels
from repro.core.entry import IndexEntry
from repro.core.messages import UpdateMessage, UpdateType
from repro.sim.engine import Simulator
from repro.sim.random import BufferedUniforms

NEIGHBORS = 32
UPDATES_PER_NEIGHBOR = 1_000
COIN_FLIPS = 200_000


def _update(i: int) -> UpdateMessage:
    entry = IndexEntry("k", f"k/r{i}", "addr", 1e9, 0.0)
    return UpdateMessage("k", UpdateType.REFRESH, (entry,), f"k/r{i}", 0.0)


def test_channels_pump_drain(perf_publish):
    total = NEIGHBORS * UPDATES_PER_NEIGHBOR

    def run() -> int:
        sim = Simulator()
        sent = []
        channels = OutgoingUpdateChannels(
            sim, lambda neighbor, u: sent.append(neighbor),
            capacity=CapacityConfig(rate=1e6),
        )
        for n in range(NEIGHBORS):
            for i in range(UPDATES_PER_NEIGHBOR):
                channels.push(f"n{n:02d}", _update(i))
        sim.run()
        assert len(sent) == total
        return total

    wall, ops = best_of(run)
    perf_publish("channels_pump_drain", wall_seconds=wall, ops=ops,
                 unit="tokens")


def test_channels_fraction_flips(perf_publish):
    def run() -> int:
        sim = Simulator()
        channels = OutgoingUpdateChannels(
            sim, lambda neighbor, u: None,
            capacity=CapacityConfig(fraction=0.5),
            # The production wiring: block-buffered uniforms over the
            # node's shared capacity stream.
            rng=BufferedUniforms(np.random.default_rng(17)),
        )
        update = _update(0)
        for _ in range(COIN_FLIPS):
            channels.push("n1", update)
        return COIN_FLIPS

    wall, ops = best_of(run)
    perf_publish("channels_fraction_flips", wall_seconds=wall, ops=ops,
                 unit="flips")
