"""Measurement helpers shared by the perf micro/macro benchmarks."""

from __future__ import annotations

import time
from typing import Callable, Tuple

#: Timed rounds per benchmark (after one untimed warmup).
PERF_ROUNDS = 3


def best_of(fn: Callable[[], int], rounds: int = PERF_ROUNDS) -> Tuple[float, int]:
    """Run ``fn`` once untimed, then ``rounds`` timed; return best round.

    ``fn`` returns the number of operations it performed; the result is
    ``(best_wall_seconds, ops_of_best_round)``.  Throughput is a property
    of the code, so the least-interfered-with (minimum-wall) round is the
    estimate of record; simulations are deterministic, so rounds differ
    only by machine noise.
    """
    fn()  # warmup: import costs, allocator steady-state, branch caches
    best = None
    for _ in range(rounds):
        t0 = time.perf_counter()
        ops = fn()
        dt = time.perf_counter() - t0
        if best is None or dt < best[0]:
            best = (dt, ops)
    return best
