"""Ablation: CUP over CAN versus over Chord.

§2.2 claims CUP works over any structured overlay; this runs the same
workload over both substrates and checks the win appears on each (with
absolute numbers scaled by the substrates' route-length geometry —
O(sqrt n) grid paths vs O(log n) finger paths).
"""

from repro.experiments.ablations import run_overlay_ablation
from repro.experiments.runner import clear_cache


def test_ablation_overlay_substrate(benchmark, bench_scale, publish):
    def run():
        clear_cache()
        return run_overlay_ablation(bench_scale, paper_rate=1.0, seed=42)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    publish("ablation_overlay", result)
