"""Table 3: multiple replicas per key; naive versus replica-independent
cut-off triggering.

Paper shape: with the naive trigger, adding replicas *increases* misses
(updates reset the popularity measure faster than queries accrue); with
the replica-independent fix, misses are flat in the replica count; total
cost grows with replicas and eventually overtakes standard caching
(paper: crossover at 8 replicas).
"""

from repro.experiments.replicas_sweep import run_replicas_sweep
from repro.experiments.runner import clear_cache


def test_table3_replicas(benchmark, bench_scale, publish):
    def run():
        clear_cache()
        return run_replicas_sweep(
            bench_scale, replica_counts=(1, 2, 5, 10, 50, 100), seed=42
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    publish("table3_replicas", result)
